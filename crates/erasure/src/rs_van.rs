//! Reed-Solomon coding with a systematized Vandermonde generator matrix.

use eckv_gf::{slice, Matrix};

use crate::codec::{check_encode_shape, check_reconstruct_shape, ErasureCodec};
use crate::error::ErasureError;

/// `RS_Van`: the classic Reed-Solomon code the paper selects for key-value
/// pair sizes between 1 KB and 1 MB.
///
/// The generator is the extended `(k+m) x k` Vandermonde matrix transformed
/// so its top `k x k` block is the identity (systematic form). Encoding one
/// stripe costs `m * k` slice multiply-accumulates; decoding inverts the
/// `k x k` submatrix of surviving rows.
///
/// # Example
///
/// ```
/// use eckv_erasure::{ErasureCodec, RsVandermonde};
///
/// let rs = RsVandermonde::new(3, 2)?;
/// let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 1; 8]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
/// let mut p0 = vec![0u8; 8];
/// let mut p1 = vec![0u8; 8];
/// {
///     let mut parity: Vec<&mut [u8]> = vec![&mut p0, &mut p1];
///     rs.encode(&refs, &mut parity)?;
/// }
///
/// let mut shards = vec![None, Some(data[1].clone()), Some(data[2].clone()), Some(p0), Some(p1)];
/// shards.truncate(5);
/// rs.reconstruct(&mut shards)?;
/// assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RsVandermonde {
    k: usize,
    m: usize,
    /// Systematic `(k+m) x k` generator: top block identity, bottom block
    /// the parity coefficients.
    generator: Matrix,
}

impl RsVandermonde {
    /// Builds an `RS(k, m)` codec.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `k == 0`, `m == 0` or
    /// `k + m > 256` (GF(2^8) supports at most 256 distinct shards).
    pub fn new(k: usize, m: usize) -> Result<Self, ErasureError> {
        if k == 0 || m == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "k and m must be positive".to_owned(),
            });
        }
        if k + m > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: format!("k + m = {} exceeds the GF(2^8) limit of 256", k + m),
            });
        }
        let generator = Matrix::vandermonde(k + m, k)
            .systematize()
            .expect("vandermonde top block with distinct points is invertible");
        Ok(RsVandermonde { k, m, generator })
    }

    /// The systematic generator matrix (exposed for tests and analysis).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }
}

impl ErasureCodec for RsVandermonde {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.m
    }

    fn shard_alignment(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "RS_Van"
    }

    fn cost_profile(&self) -> crate::codec::CostProfile {
        crate::codec::CostProfile::FieldMul
    }

    fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), ErasureError> {
        check_encode_shape(self.k, self.m, 1, data, parity)?;
        // One fused pass: every parity row's coefficients are applied to
        // each source block while it is hot in cache (vs. re-streaming all
        // sources once per row).
        for out in parity.iter_mut() {
            out.fill(0);
        }
        let coeffs: Vec<&[u8]> = (0..self.m)
            .map(|i| self.generator.row(self.k + i))
            .collect();
        slice::matrix_mac(&coeffs, data, parity);
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let len = check_reconstruct_shape(self.k, self.m, 1, shards)?;

        let present: Vec<usize> = (0..self.k + self.m)
            .filter(|&i| shards[i].is_some())
            .collect();
        let missing_data: Vec<usize> = (0..self.k).filter(|&i| shards[i].is_none()).collect();

        if !missing_data.is_empty() {
            // Use the first k surviving shards to solve for the data.
            let chosen = &present[..self.k];
            let sub = self.generator.select_rows(chosen);
            let inv = sub
                .invert()
                .expect("any k rows of an MDS generator are independent");

            let chosen_slices: Vec<&[u8]> = chosen
                .iter()
                .map(|&i| shards[i].as_deref().expect("chosen shards are present"))
                .collect();

            let coeffs: Vec<&[u8]> = missing_data.iter().map(|&d| inv.row(d)).collect();
            let mut recovered: Vec<Vec<u8>> = vec![vec![0u8; len]; missing_data.len()];
            {
                let mut drefs: Vec<&mut [u8]> =
                    recovered.iter_mut().map(|b| b.as_mut_slice()).collect();
                slice::matrix_mac(&coeffs, &chosen_slices, &mut drefs);
            }
            for (&d, buf) in missing_data.iter().zip(recovered) {
                shards[d] = Some(buf);
            }
        }

        // Re-derive any missing parity from the (now complete) data shards.
        let missing_parity: Vec<usize> = (self.k..self.k + self.m)
            .filter(|&i| shards[i].is_none())
            .collect();
        if !missing_parity.is_empty() {
            let data_slices: Vec<&[u8]> = (0..self.k)
                .map(|i| shards[i].as_deref().expect("data is complete"))
                .collect();
            let coeffs: Vec<&[u8]> = missing_parity
                .iter()
                .map(|&p| self.generator.row(p))
                .collect();
            let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; missing_parity.len()];
            {
                let mut drefs: Vec<&mut [u8]> =
                    rebuilt.iter_mut().map(|b| b.as_mut_slice()).collect();
                slice::matrix_mac(&coeffs, &data_slices, &mut drefs);
            }
            for (&p, buf) in missing_parity.iter().zip(rebuilt) {
                shards[p] = Some(buf);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ErasureCodec;

    fn encode_all(codec: &RsVandermonde, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let len = data[0].len();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; codec.parity_shards()];
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            codec.encode(&refs, &mut prefs).expect("encode");
        }
        let mut all = data.to_vec();
        all.extend(parity);
        all
    }

    #[test]
    fn every_double_erasure_recovers_rs32() {
        let codec = RsVandermonde::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3)
            .map(|i| (0..64).map(|j| (i * 97 + j * 13) as u8).collect())
            .collect();
        let all = encode_all(&codec, &data);
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                codec.reconstruct(&mut shards).expect("recoverable");
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[i], "erased {a},{b} shard {i}");
                }
            }
        }
    }

    #[test]
    fn triple_erasure_is_unrecoverable_rs32() {
        let codec = RsVandermonde::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 16]).collect();
        let all = encode_all(&codec, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        assert!(matches!(
            codec.reconstruct(&mut shards),
            Err(ErasureError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn wide_codes_work() {
        let codec = RsVandermonde::new(10, 4).unwrap();
        let data: Vec<Vec<u8>> = (0..10)
            .map(|i| (0..33).map(|j| (i + 3 * j) as u8).collect())
            .collect();
        let all = encode_all(&codec, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for gone in [0, 5, 11, 13] {
            shards[gone] = None;
        }
        codec.reconstruct(&mut shards).expect("4 erasures with m=4");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &all[i]);
        }
    }

    #[test]
    fn no_erasure_reconstruct_is_noop() {
        let codec = RsVandermonde::new(2, 1).unwrap();
        let data = vec![vec![9u8; 5], vec![7u8; 5]];
        let all = encode_all(&codec, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        codec.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &all[i]);
        }
    }

    #[test]
    fn empty_shards_encode() {
        let codec = RsVandermonde::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = vec![vec![]; 3];
        let all = encode_all(&codec, &data);
        assert!(all.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn rejects_zero_k_or_m() {
        assert!(RsVandermonde::new(0, 2).is_err());
        assert!(RsVandermonde::new(3, 0).is_err());
        assert!(RsVandermonde::new(200, 100).is_err());
    }

    #[test]
    fn generator_top_block_is_identity() {
        let codec = RsVandermonde::new(4, 3).unwrap();
        let top = codec.generator().select_rows(&[0, 1, 2, 3]);
        assert!(top.is_identity());
    }

    #[test]
    fn parity_shards_differ_from_data() {
        // Guards against the degenerate "parity = copy" bug.
        let codec = RsVandermonde::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 1; 32]).collect();
        let all = encode_all(&codec, &data);
        assert_ne!(all[3], all[4]);
        for d in 0..3 {
            assert_ne!(all[3], all[d]);
        }
    }
}
