//! Locally repairable codes (the paper's future work: "optimized erasure
//! codes such as locally repairable codes").
//!
//! An `LRC(k, l, r)` splits the `k` data shards into `l` local groups,
//! each protected by one XOR *local parity*, and adds `r` Reed-Solomon
//! *global parities* over all data. A single lost shard is repaired from
//! its group alone — `k/l` reads instead of the `k` reads Reed-Solomon
//! needs — which is exactly the recovery-overhead optimization the paper
//! plans to adopt.
//!
//! Unlike the MDS codes in this crate, an LRC does **not** guarantee
//! recovery from every `l + r`-erasure pattern; decodability is determined
//! information-theoretically (the surviving generator rows must span the
//! data space), and [`Lrc::reconstruct`] reports unrecoverable patterns as
//! [`ErasureError::TooManyErasures`].

use eckv_gf::{slice, Matrix};

use crate::codec::{check_encode_shape, check_reconstruct_shape, CostProfile, ErasureCodec};
use crate::error::ErasureError;

/// Azure-style local reconstruction code.
///
/// Shard layout: `0..k` data, `k..k+l` local parities (group `j` covers
/// data shards `j*k/l..(j+1)*k/l`), `k+l..k+l+r` global parities.
///
/// # Example
///
/// ```
/// use eckv_erasure::{ErasureCodec, Lrc};
///
/// let lrc = Lrc::new(6, 2, 2)?;
/// assert_eq!(lrc.total_shards(), 10);
/// // Repairing one data shard touches only its local group:
/// assert_eq!(lrc.repair_reads(0), 3);
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lrc {
    k: usize,
    l: usize,
    r: usize,
    /// Full `(k + l + r) x k` generator: identity, local parities, global
    /// parities.
    generator: Matrix,
}

impl Lrc {
    /// Builds an `LRC(k, l, r)`.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] unless `l` divides `k`,
    /// all of `k`, `l`, `r` are positive, and the shard count fits GF(2^8).
    pub fn new(k: usize, l: usize, r: usize) -> Result<Self, ErasureError> {
        if k == 0 || l == 0 || r == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "k, l and r must be positive".to_owned(),
            });
        }
        if !k.is_multiple_of(l) {
            return Err(ErasureError::InvalidParameters {
                reason: format!("l = {l} must divide k = {k}"),
            });
        }
        if k + l + r > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: format!("k + l + r = {} exceeds the GF(2^8) limit", k + l + r),
            });
        }
        let group = k / l;
        // Build the fixed part: identity + group-XOR local parities.
        let mut base = Matrix::zero(k + l + r, k);
        for i in 0..k {
            base.set(i, i, 1);
        }
        for j in 0..l {
            for c in j * group..(j + 1) * group {
                base.set(k + j, c, 1);
            }
        }
        // Global parity coefficients must make the code *maximally
        // recoverable* — every pattern of up to r + l erasures that is
        // information-theoretically recoverable must actually be decodable
        // (in particular every r + 1 erasure pattern). A Cauchy family is
        // searched and each candidate brute-force verified; the shapes used
        // in practice settle on the first few attempts.
        for attempt in 0..64u8 {
            let mut generator = base.clone();
            for p in 0..r {
                for c in 0..k {
                    let x = eckv_gf::Gf256::new(
                        (k as u8)
                            .wrapping_add(p as u8)
                            .wrapping_add(attempt.wrapping_mul(31))
                            .wrapping_add(64),
                    );
                    let y = eckv_gf::Gf256::new(c as u8);
                    let Some(e) = (x + y).inv() else {
                        // x collided with a data index; this attempt's
                        // family is degenerate, try the next.
                        continue;
                    };
                    generator.set(k + l + p, c, e.value());
                }
            }
            let candidate = Lrc { k, l, r, generator };
            if candidate.all_small_patterns_recoverable() {
                return Ok(candidate);
            }
        }
        Err(ErasureError::InvalidParameters {
            reason: format!(
                "no maximally recoverable LRC({k},{l},{r}) found in the searched family"
            ),
        })
    }

    /// Verifies every erasure pattern of at most `r + 1` shards decodes
    /// (the MR guarantee Azure-style LRCs provide).
    fn all_small_patterns_recoverable(&self) -> bool {
        let n = self.total_shards();
        let budget = self.r + 1;
        // Enumerate all subsets of size <= budget via bitmask recursion.
        fn rec(lrc: &Lrc, start: usize, lost: &mut Vec<usize>, budget: usize, n: usize) -> bool {
            if !lost.is_empty() && !lrc.is_recoverable(lost) {
                return false;
            }
            if lost.len() == budget {
                return true;
            }
            for i in start..n {
                lost.push(i);
                if !rec(lrc, i + 1, lost, budget, n) {
                    return false;
                }
                lost.pop();
            }
            true
        }
        rec(self, 0, &mut Vec::new(), budget, n)
    }

    /// Number of local groups.
    pub fn groups(&self) -> usize {
        self.l
    }

    /// Number of global parities.
    pub fn global_parities(&self) -> usize {
        self.r
    }

    /// Shards read to repair a single lost shard: group size for data and
    /// local parities (local repair), `k` for a global parity.
    pub fn repair_reads(&self, lost: usize) -> usize {
        if lost < self.k + self.l {
            self.k / self.l
        } else {
            self.k
        }
    }

    /// The shards a local repair of `lost` reads: the rest of its group
    /// plus the group's local parity (for data and local-parity shards),
    /// or all `k` data shards (for a global parity).
    pub fn repair_set(&self, lost: usize) -> Vec<usize> {
        let group = self.k / self.l;
        if lost < self.k {
            let g = lost / group;
            let mut set: Vec<usize> = (g * group..(g + 1) * group)
                .filter(|&i| i != lost)
                .collect();
            set.push(self.k + g);
            set
        } else if lost < self.k + self.l {
            let g = lost - self.k;
            (g * group..(g + 1) * group).collect()
        } else {
            (0..self.k).collect()
        }
    }

    /// Repairs a single lost shard from exactly its [`Lrc::repair_set`].
    /// Data and local-parity shards repair by a plain group XOR (`k/l`
    /// reads); a global parity re-encodes from the data.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::ShapeMismatch`] if `sources` is not exactly
    /// the repair set (any order) or lengths differ.
    pub fn repair_single(
        &self,
        lost: usize,
        sources: &[(usize, &[u8])],
    ) -> Result<Vec<u8>, ErasureError> {
        let mut want = self.repair_set(lost);
        want.sort_unstable();
        let mut have: Vec<usize> = sources.iter().map(|&(i, _)| i).collect();
        have.sort_unstable();
        if want != have {
            return Err(ErasureError::ShapeMismatch {
                detail: format!("repair of {lost} needs shards {want:?}, got {have:?}"),
            });
        }
        let len = sources[0].1.len();
        if sources.iter().any(|(_, s)| s.len() != len) {
            return Err(ErasureError::ShapeMismatch {
                detail: "repair sources must share one length".to_owned(),
            });
        }
        if lost < self.k + self.l {
            // Group XOR: parity = sum of group, so the missing member is
            // the XOR of everything else in the local equation.
            let mut out = vec![0u8; len];
            for (_, s) in sources {
                eckv_gf::slice::xor_slice(s, &mut out);
            }
            Ok(out)
        } else {
            // Global parity: re-encode its row from the data shards.
            let mut ordered = sources.to_vec();
            ordered.sort_unstable_by_key(|&(i, _)| i);
            let data: Vec<&[u8]> = ordered.iter().map(|&(_, s)| s).collect();
            let mut out = vec![0u8; len];
            slice::row_combine(self.generator.row(lost), &data, &mut out);
            Ok(out)
        }
    }

    /// Whether the erasure pattern (set of lost shard indices) is
    /// information-theoretically recoverable.
    pub fn is_recoverable(&self, lost: &[usize]) -> bool {
        let available: Vec<usize> = (0..self.total_shards())
            .filter(|i| !lost.contains(i))
            .collect();
        self.independent_rows(&available).is_some()
    }

    /// Finds `k` linearly independent generator rows among `available`,
    /// greedily (Gaussian elimination over the candidates).
    fn independent_rows(&self, available: &[usize]) -> Option<Vec<usize>> {
        let mut basis: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        let mut chosen = Vec::with_capacity(self.k);
        for &row_idx in available {
            if chosen.len() == self.k {
                break;
            }
            let mut row: Vec<u8> = self.generator.row(row_idx).to_vec();
            // Reduce against the current basis.
            for b in &basis {
                let lead = b.iter().position(|&x| x != 0).expect("basis rows nonzero");
                if row[lead] != 0 {
                    let f = row[lead];
                    let binv = eckv_gf::Gf256::new(b[lead]).inv().expect("lead nonzero");
                    let scale = (eckv_gf::Gf256::new(f) * binv).value();
                    for (x, &bv) in row.iter_mut().zip(b) {
                        *x ^= eckv_gf::Gf256::mul_bytes(scale, bv);
                    }
                }
            }
            if row.iter().any(|&x| x != 0) {
                basis.push(row);
                chosen.push(row_idx);
            }
        }
        if chosen.len() == self.k {
            Some(chosen)
        } else {
            None
        }
    }
}

impl ErasureCodec for Lrc {
    fn data_shards(&self) -> usize {
        self.k
    }

    fn parity_shards(&self) -> usize {
        self.l + self.r
    }

    fn shard_alignment(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "LRC"
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::FieldMul
    }

    fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), ErasureError> {
        check_encode_shape(self.k, self.l + self.r, 1, data, parity)?;
        // Fused multi-row pass over the sources; the all-0/1 local-parity
        // rows take the pure-XOR path inside the kernel automatically.
        for out in parity.iter_mut() {
            out.fill(0);
        }
        let coeffs: Vec<&[u8]> = (0..self.l + self.r)
            .map(|i| self.generator.row(self.k + i))
            .collect();
        slice::matrix_mac(&coeffs, data, parity);
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let n = self.total_shards();
        // Shape checks reuse the common helper with the `>= k present`
        // floor; rank decides actual recoverability below.
        let len = check_reconstruct_shape(self.k, self.l + self.r, 1, shards)?;
        let present: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        let missing: Vec<usize> = (0..n).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let Some(rows) = self.independent_rows(&present) else {
            return Err(ErasureError::TooManyErasures {
                present: present.len(),
                required: self.k,
            });
        };
        let sub = self.generator.select_rows(&rows);
        let inv = sub.invert().expect("rows chosen to be independent");
        let sources: Vec<&[u8]> = rows
            .iter()
            .map(|&i| shards[i].as_deref().expect("chosen rows are present"))
            .collect();
        // Recover all data shards first, solving every missing row in one
        // fused pass over the chosen sources...
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        let mut solved: Vec<Vec<u8>> = vec![vec![0u8; len]; missing_data.len()];
        {
            let coeffs: Vec<&[u8]> = missing_data.iter().map(|&d| inv.row(d)).collect();
            let mut drefs: Vec<&mut [u8]> = solved.iter_mut().map(|b| b.as_mut_slice()).collect();
            slice::matrix_mac(&coeffs, &sources, &mut drefs);
        }
        let mut solved = solved.into_iter();
        let data: Vec<Vec<u8>> = (0..self.k)
            .map(|d| match &shards[d] {
                Some(existing) => existing.clone(),
                None => solved.next().expect("one solved row per missing data"),
            })
            .collect();
        // ...then rebuild every missing parity from the generator, again in
        // one fused pass over the (now complete) data.
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&i| i >= self.k).collect();
        let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; missing_parity.len()];
        {
            let coeffs: Vec<&[u8]> = missing_parity
                .iter()
                .map(|&p| self.generator.row(p))
                .collect();
            let mut drefs: Vec<&mut [u8]> = rebuilt.iter_mut().map(|b| b.as_mut_slice()).collect();
            slice::matrix_mac(&coeffs, &data_refs, &mut drefs);
        }
        for (&p, buf) in missing_parity.iter().zip(rebuilt) {
            shards[p] = Some(buf);
        }
        for &d in &missing_data {
            shards[d] = Some(data[d].clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_all(codec: &Lrc, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let len = data[0].len();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; codec.parity_shards()];
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            codec.encode(&refs, &mut prefs).expect("encode");
        }
        let mut all = data.to_vec();
        all.extend(parity);
        all
    }

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 101 + j * 7) as u8).collect())
            .collect()
    }

    #[test]
    fn local_parity_is_group_xor() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = sample_data(6, 32);
        let all = encode_all(&lrc, &data);
        for j in 0..32 {
            let g0 = data[0][j] ^ data[1][j] ^ data[2][j];
            let g1 = data[3][j] ^ data[4][j] ^ data[5][j];
            assert_eq!(all[6][j], g0);
            assert_eq!(all[7][j], g1);
        }
    }

    #[test]
    fn every_triple_erasure_of_lrc_6_2_2_recovers() {
        // LRC(6,2,2) has 4 parities and tolerates ANY 3 erasures (it is
        // maximally recoverable for this shape with RS global parities).
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = sample_data(6, 40);
        let all = encode_all(&lrc, &data);
        let n = all.len();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    shards[c] = None;
                    assert!(
                        lrc.is_recoverable(&[a, b, c]),
                        "pattern ({a},{b},{c}) should be recoverable"
                    );
                    lrc.reconstruct(&mut shards).expect("recoverable");
                    for (i, s) in shards.iter().enumerate() {
                        assert_eq!(s.as_ref().unwrap(), &all[i], "({a},{b},{c}) shard {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn most_quadruple_erasures_recover_but_not_all() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let n = lrc.total_shards();
        let mut recoverable = 0;
        let mut total = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        total += 1;
                        if lrc.is_recoverable(&[a, b, c, d]) {
                            recoverable += 1;
                        }
                    }
                }
            }
        }
        // 4 erasures exceed some patterns' information (e.g. a whole local
        // group plus its parity plus one more than global parities cover).
        assert!(recoverable < total, "LRC must not be MDS at 4 erasures");
        assert!(
            recoverable * 100 >= total * 70,
            "most 4-erasure patterns should still recover: {recoverable}/{total}"
        );
    }

    #[test]
    fn recoverable_patterns_roundtrip_bytes() {
        let lrc = Lrc::new(4, 2, 2).unwrap();
        let data = sample_data(4, 25);
        let all = encode_all(&lrc, &data);
        let n = all.len();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let lost = [a, b, c];
                    let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                    for &x in &lost {
                        shards[x] = None;
                    }
                    match lrc.reconstruct(&mut shards) {
                        Ok(()) => {
                            for (i, s) in shards.iter().enumerate() {
                                assert_eq!(s.as_ref().unwrap(), &all[i]);
                            }
                        }
                        Err(ErasureError::TooManyErasures { .. }) => {
                            assert!(!lrc.is_recoverable(&lost));
                        }
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn repair_locality_beats_reed_solomon() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        // One lost data shard: 3 local reads instead of RS(6, x)'s 6.
        assert_eq!(lrc.repair_reads(2), 3);
        assert_eq!(lrc.repair_reads(6), 3); // local parity too
        assert_eq!(lrc.repair_reads(9), 6); // global parity needs full read
    }

    #[test]
    fn local_repair_reconstructs_every_shard_kind() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = sample_data(6, 48);
        let all = encode_all(&lrc, &data);
        for lost in 0..lrc.total_shards() {
            let set = lrc.repair_set(lost);
            assert_eq!(set.len(), lrc.repair_reads(lost));
            let sources: Vec<(usize, &[u8])> =
                set.iter().map(|&i| (i, all[i].as_slice())).collect();
            let rebuilt = lrc.repair_single(lost, &sources).expect("repairable");
            assert_eq!(rebuilt, all[lost], "lost={lost}");
        }
    }

    #[test]
    fn local_repair_rejects_wrong_sources() {
        let lrc = Lrc::new(4, 2, 2).unwrap();
        let data = sample_data(4, 10);
        let all = encode_all(&lrc, &data);
        let sources: Vec<(usize, &[u8])> = vec![(2, all[2].as_slice())];
        assert!(lrc.repair_single(0, &sources).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Lrc::new(5, 2, 2).is_err()); // l does not divide k
        assert!(Lrc::new(0, 1, 1).is_err());
        assert!(Lrc::new(6, 0, 2).is_err());
        assert!(Lrc::new(6, 2, 0).is_err());
        assert!(Lrc::new(250, 5, 5).is_err());
    }

    #[test]
    fn works_with_striper() {
        use crate::stripe::Striper;
        use std::sync::Arc;
        let striper = Striper::new(
            Arc::new(Lrc::new(4, 2, 2).unwrap()) as Arc<dyn crate::codec::ErasureCodec>
        );
        let value: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        let stripe = striper.encode_value(&value);
        let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
        shards[1] = None;
        shards[5] = None;
        let got = striper
            .decode_value(&mut shards, stripe.original_len)
            .unwrap();
        assert_eq!(got, value);
    }
}
