//! Value framing: split arbitrary-length values into aligned stripes.

use std::sync::Arc;

use crate::codec::ErasureCodec;
use crate::error::ErasureError;

/// An encoded stripe: `k + m` equal-length shards plus the framing needed to
/// recover the exact original value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStripe {
    /// All shards: indices `0..k` are data, `k..k+m` parity.
    pub shards: Vec<Vec<u8>>,
    /// Length of the original (unpadded) value in bytes.
    pub original_len: usize,
    /// Length of each shard in bytes.
    pub shard_len: usize,
}

/// Splits values into codec-aligned shards and reassembles them.
///
/// The striper owns a shared [`ErasureCodec`] so clients, servers and
/// benchmark drivers can encode concurrently from one instance.
///
/// # Example
///
/// ```
/// use eckv_erasure::{CodecKind, Striper};
///
/// let striper = Striper::new(CodecKind::Liberation.build(3, 2)?);
/// let stripe = striper.encode_value(&vec![42u8; 10_000]);
/// assert_eq!(stripe.shards.len(), 5);
/// assert_eq!(stripe.shards[0].len(), stripe.shard_len);
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Striper {
    codec: Arc<dyn ErasureCodec>,
}

impl Striper {
    /// Wraps a codec.
    pub fn new(codec: impl Into<Arc<dyn ErasureCodec>>) -> Self {
        Striper {
            codec: codec.into(),
        }
    }

    /// The wrapped codec.
    pub fn codec(&self) -> &Arc<dyn ErasureCodec> {
        &self.codec
    }

    /// Shard length used for a value of `len` bytes: `ceil(len / k)` rounded
    /// up to the codec's alignment (and at least one alignment unit so empty
    /// values still produce well-formed stripes).
    pub fn shard_len_for(&self, len: usize) -> usize {
        let k = self.codec.data_shards();
        let align = self.codec.shard_alignment();
        let per_shard = len.div_ceil(k).max(1);
        per_shard.div_ceil(align) * align
    }

    /// Encodes a value into `k + m` shards, zero-padding the tail.
    pub fn encode_value(&self, value: &[u8]) -> EncodedStripe {
        let k = self.codec.data_shards();
        let m = self.codec.parity_shards();
        let shard_len = self.shard_len_for(value.len());

        let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
        for i in 0..k {
            let start = (i * shard_len).min(value.len());
            let end = ((i + 1) * shard_len).min(value.len());
            let mut shard = Vec::with_capacity(shard_len);
            shard.extend_from_slice(&value[start..end]);
            shard.resize(shard_len, 0);
            data.push(shard);
        }
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; shard_len]; m];
        {
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            self.codec
                .encode(&refs, &mut prefs)
                .expect("shards constructed by the striper are always well-shaped");
        }
        let mut shards = data;
        shards.extend(parity);
        EncodedStripe {
            shards,
            original_len: value.len(),
            shard_len,
        }
    }

    /// Reconstructs the original value from surviving shards.
    ///
    /// `shards` must have `k + m` slots; missing shards are `None`. The
    /// slots are filled in as a side effect (useful for repair).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::TooManyErasures`] when fewer than `k` shards
    /// survive, or a shape error on malformed input.
    pub fn decode_value(
        &self,
        shards: &mut [Option<Vec<u8>>],
        original_len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let k = self.codec.data_shards();
        self.codec.reconstruct(shards)?;
        let mut value = Vec::with_capacity(original_len);
        for shard in shards.iter().take(k) {
            let shard = shard.as_deref().expect("reconstruct fills every slot");
            let take = (original_len - value.len()).min(shard.len());
            value.extend_from_slice(&shard[..take]);
            if value.len() == original_len {
                break;
            }
        }
        Ok(value)
    }
}

impl From<Box<dyn ErasureCodec>> for Striper {
    fn from(codec: Box<dyn ErasureCodec>) -> Self {
        Striper {
            codec: Arc::from(codec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecKind;

    fn striper(kind: CodecKind) -> Striper {
        Striper::from(kind.build(3, 2).unwrap())
    }

    #[test]
    fn roundtrip_exact_lengths_all_codecs() {
        for kind in CodecKind::ALL {
            let s = striper(kind);
            for len in [0usize, 1, 2, 3, 7, 15, 16, 100, 1024, 4096, 10_000] {
                let value: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
                let stripe = s.encode_value(&value);
                let mut shards: Vec<Option<Vec<u8>>> =
                    stripe.shards.iter().cloned().map(Some).collect();
                let got = s.decode_value(&mut shards, stripe.original_len).unwrap();
                assert_eq!(got, value, "{kind} len={len}");
            }
        }
    }

    #[test]
    fn roundtrip_with_two_erasures_all_codecs() {
        for kind in CodecKind::ALL {
            let s = striper(kind);
            let value: Vec<u8> = (0..5000).map(|i| (i * 13) as u8).collect();
            let stripe = s.encode_value(&value);
            for a in 0..5 {
                for b in (a + 1)..5 {
                    let mut shards: Vec<Option<Vec<u8>>> =
                        stripe.shards.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    let got = s.decode_value(&mut shards, stripe.original_len).unwrap();
                    assert_eq!(got, value, "{kind} erased {a},{b}");
                }
            }
        }
    }

    #[test]
    fn shard_len_respects_alignment() {
        let s = striper(CodecKind::Liberation);
        let w = 3; // liberation k=3 -> smallest prime >= 3 is 3
        for len in [1usize, 10, 100, 12345] {
            let sl = s.shard_len_for(len);
            assert_eq!(sl % w, 0, "len={len}");
            assert!(sl * 3 >= len);
        }
    }

    #[test]
    fn empty_value_roundtrips() {
        let s = striper(CodecKind::RsVan);
        let stripe = s.encode_value(&[]);
        assert!(stripe.shard_len > 0);
        let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        let got = s.decode_value(&mut shards, 0).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn decode_fails_cleanly_beyond_m_erasures() {
        let s = striper(CodecKind::CauchyRs);
        let stripe = s.encode_value(&[1, 2, 3, 4, 5]);
        let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            s.decode_value(&mut shards, stripe.original_len),
            Err(ErasureError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn repair_fills_missing_slots() {
        let s = striper(CodecKind::RsVan);
        let stripe = s.encode_value(&vec![9u8; 999]);
        let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
        shards[4] = None;
        s.decode_value(&mut shards, stripe.original_len).unwrap();
        assert_eq!(shards[4].as_ref().unwrap(), &stripe.shards[4]);
    }
}
