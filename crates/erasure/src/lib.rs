//! Erasure codes for resilient key-value storage.
//!
//! Implements the three codec families the paper studies with Jerasure
//! (Section III-B, Figure 4):
//!
//! * [`RsVandermonde`] — classic Reed-Solomon with a systematized
//!   Vandermonde generator matrix (`RS_Van`, the codec the paper selects
//!   for its 1 KB–1 MB key-value range).
//! * [`CauchyRs`] — Cauchy Reed-Solomon over a GF(2^8) bit-matrix with a
//!   density-reduced ("good") Cauchy matrix, encoding with pure XORs (`CRS`).
//! * [`Liberation`] — Plank's minimum-density RAID-6 Liberation codes
//!   (`R6-Lib`, two parities only).
//!
//! All codecs implement [`ErasureCodec`]: split a value into `k` data
//! shards, compute `m` parity shards, and reconstruct the original from any
//! `k` of the `k + m` shards. [`Striper`] handles value padding/framing so
//! arbitrary-length values round-trip exactly.
//!
//! # Example
//!
//! ```
//! use eckv_erasure::{CodecKind, Striper};
//!
//! // RS(3,2) as in the paper's 5-node cluster: tolerates 2 failures.
//! let striper = Striper::new(CodecKind::RsVan.build(3, 2)?);
//! let value = b"the quick brown fox jumps over the lazy dog".to_vec();
//! let stripe = striper.encode_value(&value);
//!
//! // Lose any two shards...
//! let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
//! shards[0] = None;
//! shards[3] = None;
//!
//! // ...and recover the value bit-exactly.
//! let recovered = striper.decode_value(&mut shards, stripe.original_len)?;
//! assert_eq!(recovered, value);
//! # Ok::<(), eckv_erasure::ErasureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix_codec;
mod codec;
mod crs;
mod error;
mod liberation;
mod lrc;
pub mod parallel;
mod rs_van;
pub mod schedule;
mod stripe;

pub use codec::{CodecKind, CostProfile, ErasureCodec};
pub use crs::CauchyRs;
pub use error::ErasureError;
pub use liberation::Liberation;
pub use lrc::Lrc;
pub use rs_van::RsVandermonde;
pub use stripe::{EncodedStripe, Striper};
