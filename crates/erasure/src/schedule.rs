//! XOR-schedule optimization for bit-matrix codes (Plank's "smart
//! scheduling", via greedy common-subexpression elimination).
//!
//! A naive bit-matrix encode XORs one packet per set bit. Coding rows
//! overlap heavily, so computing frequently shared packet *pairs* once and
//! reusing the intermediate cuts the XOR count — for dense Cauchy matrices
//! typically by 25–50 %. This module derives such a schedule and can
//! execute it, and is exposed through
//! [`crate::CauchyRs`]/[`crate::Liberation`]'s engines for analysis.

use std::collections::{BTreeSet, HashMap};

use eckv_gf::{slice, BitMatrix};

/// One step: `dst = srcs[0] ^ srcs[1] ^ ...`.
///
/// Packet numbering: `0..inputs` are the data packets; `inputs..` are
/// intermediates and outputs in step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Destination packet id.
    pub dst: usize,
    /// Source packet ids (at least one).
    pub srcs: Vec<usize>,
}

/// An executable XOR schedule for an `(outputs x inputs)` bit-matrix.
#[derive(Debug, Clone)]
pub struct XorSchedule {
    /// Number of input (data) packets.
    pub inputs: usize,
    /// Number of output (parity) packets.
    pub outputs: usize,
    /// Steps in dependency order; the **last `outputs` steps** produce the
    /// parity packets, in row order.
    pub steps: Vec<ScheduleStep>,
}

impl XorSchedule {
    /// XOR operations the schedule performs (a copy is free; each extra
    /// source costs one XOR pass).
    pub fn xor_count(&self) -> u64 {
        self.steps.iter().map(|s| (s.srcs.len() - 1) as u64).sum()
    }

    /// XOR operations a naive (per-set-bit) encode of `coding` performs.
    pub fn naive_xor_count(coding: &BitMatrix) -> u64 {
        (0..coding.rows())
            .map(|r| (coding.row_ones(r).len().saturating_sub(1)) as u64)
            .sum()
    }

    /// Executes the schedule: `data` holds the `inputs` data packets (all
    /// the same length); returns the `outputs` parity packets.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != inputs` or packet lengths differ.
    pub fn apply(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.inputs, "wrong number of data packets");
        let len = data.first().map_or(0, |d| d.len());
        assert!(data.iter().all(|d| d.len() == len), "ragged packets");

        // Dense packet table: inputs are borrowed, the rest materialize as
        // steps execute. Steps only reference already-computed packets, so
        // sources can be borrowed while the destination is still local.
        let mut computed: Vec<Vec<u8>> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let first = step.srcs[0];
            let mut out = if first < self.inputs {
                data[first].to_vec()
            } else {
                computed[first - self.inputs].clone()
            };
            let srcs: Vec<&[u8]> = step.srcs[1..]
                .iter()
                .map(|&s| {
                    if s < self.inputs {
                        data[s]
                    } else {
                        computed[s - self.inputs].as_slice()
                    }
                })
                .collect();
            slice::xor_combine(&srcs, &mut out);
            debug_assert_eq!(step.dst, self.inputs + computed.len(), "steps in order");
            computed.push(out);
        }
        computed.split_off(computed.len() - self.outputs)
    }
}

/// Derives an optimized schedule for `coding` by greedy pair extraction:
/// while some packet pair co-occurs in two or more rows, compute it once
/// as an intermediate and substitute it everywhere.
pub fn optimize(coding: &BitMatrix) -> XorSchedule {
    let inputs = coding.cols();
    let outputs = coding.rows();
    let mut rows: Vec<BTreeSet<usize>> = (0..outputs)
        .map(|r| coding.row_ones(r).into_iter().collect())
        .collect();

    let mut steps: Vec<ScheduleStep> = Vec::new();
    let mut next_id = inputs;

    loop {
        // Count pair co-occurrence across rows.
        let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
        for row in &rows {
            let items: Vec<usize> = row.iter().copied().collect();
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    *counts.entry((items[i], items[j])).or_insert(0) += 1;
                }
            }
        }
        // Deterministic choice: highest count, ties by smallest pair.
        let best = counts
            .into_iter()
            .filter(|&(_, c)| c >= 2)
            .min_by_key(|&((a, b), c)| (usize::MAX - c, a, b));
        let Some(((a, b), _)) = best else { break };

        let id = next_id;
        next_id += 1;
        steps.push(ScheduleStep {
            dst: id,
            srcs: vec![a, b],
        });
        for row in &mut rows {
            if row.contains(&a) && row.contains(&b) {
                row.remove(&a);
                row.remove(&b);
                row.insert(id);
            }
        }
    }

    // Emit the output rows last, in row order.
    for row in rows {
        let srcs: Vec<usize> = row.into_iter().collect();
        assert!(!srcs.is_empty(), "a coding row cannot be empty");
        steps.push(ScheduleStep { dst: next_id, srcs });
        next_id += 1;
    }
    XorSchedule {
        inputs,
        outputs,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CauchyRs, Liberation};
    use eckv_gf::Matrix;

    fn naive_apply(coding: &BitMatrix, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let len = data[0].len();
        (0..coding.rows())
            .map(|r| {
                let mut out = vec![0u8; len];
                for j in coding.row_ones(r) {
                    slice::xor_slice(data[j], &mut out);
                }
                out
            })
            .collect()
    }

    fn packets(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 37 + j * 11) as u8).collect())
            .collect()
    }

    fn check_matches_naive(coding: &BitMatrix) -> (u64, u64) {
        let data = packets(coding.cols(), 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let schedule = optimize(coding);
        let got = schedule.apply(&refs);
        let want = naive_apply(coding, &refs);
        assert_eq!(got, want, "schedule output must equal naive encode");
        (XorSchedule::naive_xor_count(coding), schedule.xor_count())
    }

    #[test]
    fn optimized_schedule_is_correct_and_cheaper_for_cauchy() {
        let crs = CauchyRs::new(4, 2).unwrap();
        let coding = BitMatrix::from_gf256_matrix(&{
            // Rebuild the same matrix the codec uses for an independent
            // check via the public density figure.
            let _ = &crs;
            Matrix::cauchy(2, 4)
        });
        let (naive, optimized) = check_matches_naive(&coding);
        assert!(
            optimized < naive,
            "CSE should cut XORs: naive={naive} optimized={optimized}"
        );
        // Dense Cauchy matrices typically shed at least 20%.
        assert!(
            optimized * 5 <= naive * 4,
            "expected >=20% reduction: naive={naive} optimized={optimized}"
        );
    }

    #[test]
    fn liberation_is_already_near_minimal() {
        // Minimum-density codes have almost no shared pairs to factor.
        let lib = Liberation::new(4, 2).unwrap();
        let w = lib.word_size();
        let mut coding = BitMatrix::zero(2 * w, 4 * w);
        // Reconstruct the liberation matrix through encode behaviour is
        // overkill; instead verify on the liberation-like P block alone.
        for r in 0..w {
            for s in 0..4 {
                coding.set(r, s * w + r, true);
            }
            coding.set(w + r, r, true); // trivial second block
        }
        let (naive, optimized) = check_matches_naive(&coding);
        assert!(optimized <= naive);
    }

    #[test]
    fn single_bit_rows_are_copies() {
        let mut coding = BitMatrix::zero(2, 3);
        coding.set(0, 1, true);
        coding.set(1, 2, true);
        let schedule = optimize(&coding);
        assert_eq!(schedule.xor_count(), 0, "pure copies cost no XOR");
        let data = packets(3, 16);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let out = schedule.apply(&refs);
        assert_eq!(out[0], data[1]);
        assert_eq!(out[1], data[2]);
    }

    #[test]
    fn deterministic_schedules() {
        let coding = BitMatrix::from_gf256_matrix(&Matrix::cauchy(3, 5));
        let a = optimize(&coding);
        let b = optimize(&coding);
        assert_eq!(a.steps, b.steps);
    }
}
