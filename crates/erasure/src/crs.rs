//! Cauchy Reed-Solomon coding over a GF(2^8) bit-matrix.

use eckv_gf::{BitMatrix, Gf256, Matrix};

use crate::bitmatrix_codec::{BitMatrixEngine, DEFAULT_PACKET_BYTES};
use crate::codec::ErasureCodec;
use crate::error::ErasureError;

const W: usize = 8;

/// `CRS`: Cauchy Reed-Solomon, encoding with XORs only.
///
/// The `m x k` Cauchy matrix over GF(2^8) is first density-reduced the way
/// Jerasure's *good Cauchy* construction does — each column is normalized so
/// the first row is all ones, then each remaining row is scaled by whichever
/// of its elements minimizes the bit count — and then expanded to an
/// `(m*8) x (k*8)` bit-matrix.
///
/// Compared to [`crate::RsVandermonde`], CRS trades field multiplications
/// for a larger number of XOR passes; it amortizes well for very large
/// objects but loses for the 1 KB–1 MB key-value range, which is exactly
/// the paper's Figure 4 observation.
///
/// # Example
///
/// ```
/// use eckv_erasure::{CauchyRs, ErasureCodec};
///
/// let crs = CauchyRs::new(3, 2)?;
/// assert_eq!(crs.shard_alignment(), 8);
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CauchyRs {
    engine: BitMatrixEngine,
}

impl CauchyRs {
    /// Builds a `CRS(k, m)` codec with word size `w = 8` and the
    /// Jerasure-style small packet size (see the module notes on
    /// [`crate::CauchyRs::with_packet_size`] for tuning).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `k == 0`, `m == 0` or
    /// `k + m > 256`.
    pub fn new(k: usize, m: usize) -> Result<Self, ErasureError> {
        Self::with_packet_size(k, m, DEFAULT_PACKET_BYTES)
    }

    /// Builds a `CRS(k, m)` codec with an explicit XOR segment size in
    /// bytes; `0` processes whole packets per XOR (the tuned layout that
    /// lets CRS overtake `RS_Van` at large values — the paper's "optimized
    /// for ~256 MB" regime).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `k == 0`, `m == 0` or
    /// `k + m > 256`.
    pub fn with_packet_size(k: usize, m: usize, packet_bytes: usize) -> Result<Self, ErasureError> {
        if k == 0 || m == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "k and m must be positive".to_owned(),
            });
        }
        if k + m > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: format!("k + m = {} exceeds the GF(2^8) limit of 256", k + m),
            });
        }
        let cauchy = good_cauchy(m, k);
        let coding = BitMatrix::from_gf256_matrix(&cauchy);
        Ok(CauchyRs {
            engine: BitMatrixEngine::new(k, m, W, coding, packet_bytes),
        })
    }

    /// Builds a `CRS(k, m)` in whole-packet mode with a CSE-optimized XOR
    /// schedule — the fastest configuration (see the `fig4` ablation).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] on invalid shapes.
    pub fn with_optimized_schedule(k: usize, m: usize) -> Result<Self, ErasureError> {
        let mut codec = Self::with_packet_size(k, m, 0)?;
        codec.engine.optimize_schedule();
        Ok(codec)
    }

    /// Number of ones in the coding bit-matrix (the XOR cost per stripe).
    pub fn density(&self) -> u64 {
        self.engine.density()
    }

    /// XOR operations per stripe under the active configuration: the
    /// optimized schedule's count when enabled, else the naive density.
    pub fn xor_ops_per_stripe(&self) -> u64 {
        match self.engine.optimized_schedule() {
            Some(s) => s.xor_count(),
            None => self.engine.density(),
        }
    }

    /// Brute-force MDS check (expensive; used by tests).
    pub fn is_mds(&self) -> bool {
        self.engine.is_mds()
    }
}

/// Builds a density-reduced Cauchy matrix.
///
/// Column scaling keeps the MDS property because scaling a column by a
/// nonzero constant multiplies every minor by that constant; likewise row
/// scaling. (This mirrors `cauchy_good` in Jerasure.)
fn good_cauchy(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::cauchy(rows, cols);
    // Normalize each column so row 0 becomes 1.
    for c in 0..cols {
        let head = Gf256::new(m.get(0, c));
        let inv = head.inv().expect("cauchy entries are nonzero");
        for r in 0..rows {
            m.set(r, c, (Gf256::new(m.get(r, c)) * inv).value());
        }
    }
    // For each later row, pick the divisor that minimizes total bit count.
    for r in 1..rows {
        let mut best_div = Gf256::ONE;
        let mut best_ones = row_bit_ones(&m, r);
        for c in 0..cols {
            let d = Gf256::new(m.get(r, c));
            if d.is_zero() {
                continue;
            }
            let inv = d.inv().expect("nonzero");
            let ones: u32 = (0..cols)
                .map(|cc| element_ones((Gf256::new(m.get(r, cc)) * inv).value()))
                .sum();
            if ones < best_ones {
                best_ones = ones;
                best_div = inv;
            }
        }
        if best_div != Gf256::ONE {
            for c in 0..cols {
                m.set(r, c, (Gf256::new(m.get(r, c)) * best_div).value());
            }
        }
    }
    m
}

/// Bit count of the 8x8 binary expansion of one field element.
fn element_ones(e: u8) -> u32 {
    let mut ones = 0;
    let g = Gf256::new(e);
    for c in 0..8 {
        ones += (g * Gf256::GENERATOR.pow(c)).value().count_ones();
    }
    ones
}

fn row_bit_ones(m: &Matrix, r: usize) -> u32 {
    (0..m.cols()).map(|c| element_ones(m.get(r, c))).sum()
}

impl ErasureCodec for CauchyRs {
    fn data_shards(&self) -> usize {
        self.engine.k
    }

    fn parity_shards(&self) -> usize {
        self.engine.m
    }

    fn shard_alignment(&self) -> usize {
        W
    }

    fn name(&self) -> &'static str {
        "CRS"
    }

    fn cost_profile(&self) -> crate::codec::CostProfile {
        crate::codec::CostProfile::XorSchedule {
            ones: self.engine.density(),
            w: W,
        }
    }

    fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), ErasureError> {
        self.engine.encode(data, parity)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        self.engine.reconstruct(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_all(codec: &CauchyRs, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let len = data[0].len();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; codec.parity_shards()];
        {
            let mut prefs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
            codec.encode(&refs, &mut prefs).expect("encode");
        }
        let mut all = data.to_vec();
        all.extend(parity);
        all
    }

    #[test]
    fn crs_32_is_mds() {
        assert!(CauchyRs::new(3, 2).unwrap().is_mds());
    }

    #[test]
    fn crs_43_is_mds() {
        assert!(CauchyRs::new(4, 3).unwrap().is_mds());
    }

    #[test]
    fn every_double_erasure_recovers_crs32() {
        let codec = CauchyRs::new(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3)
            .map(|i| (0..64).map(|j| (i * 71 + j * 29) as u8).collect())
            .collect();
        let all = encode_all(&codec, &data);
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                codec.reconstruct(&mut shards).expect("recoverable");
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[i], "erased {a},{b} shard {i}");
                }
            }
        }
    }

    #[test]
    fn good_cauchy_is_denser_reduction_than_raw() {
        // The density-reduced matrix must not have more ones than the raw
        // expansion; for small shapes it should be strictly lighter.
        let raw = BitMatrix::from_gf256_matrix(&Matrix::cauchy(2, 3)).ones();
        let good = CauchyRs::new(3, 2).unwrap().density();
        assert!(good <= raw, "good={good} raw={raw}");
    }

    #[test]
    fn good_cauchy_first_row_is_identity_blocks() {
        let m = good_cauchy(2, 4);
        for c in 0..4 {
            assert_eq!(m.get(0, c), 1);
        }
    }

    #[test]
    fn optimized_schedule_produces_identical_codewords() {
        let plain = CauchyRs::new(3, 2).unwrap();
        let opt = CauchyRs::with_optimized_schedule(3, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..3)
            .map(|i| (0..120).map(|j| (i * 31 + j * 7) as u8).collect())
            .collect();
        let a = encode_all(&plain, &data);
        let b = encode_all(&opt, &data);
        assert_eq!(a, b, "schedules must be semantically transparent");
        assert!(
            opt.xor_ops_per_stripe() < plain.xor_ops_per_stripe(),
            "the optimized schedule must do fewer XOR passes"
        );
        // And degraded reads still work through the optimized codec.
        let mut shards: Vec<Option<Vec<u8>>> = b.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[4] = None;
        opt.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &b[i]);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CauchyRs::new(0, 2).is_err());
        assert!(CauchyRs::new(3, 0).is_err());
        assert!(CauchyRs::new(255, 2).is_err());
    }
}
