//! The [`ErasureCodec`] trait and codec selection.

use core::fmt;

use crate::error::ErasureError;
use crate::{CauchyRs, Liberation, RsVandermonde};

/// How a codec's computational cost scales, for simulation cost models.
///
/// Real encode/decode time is measured by the Criterion benchmarks; inside
/// deterministic simulations the cost model needs to know which kernel
/// family a codec uses and how much work one stripe is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostProfile {
    /// Dense GF(2^8) multiply-accumulate passes (RS-Vandermonde): encoding
    /// processes `m * D` bytes through the multiply kernel.
    FieldMul,
    /// An XOR schedule over `w`-packet shards with `ones` set bits in the
    /// coding bit-matrix (Cauchy-RS, Liberation).
    XorSchedule {
        /// Total set bits in the coding matrix (XOR ops per stripe).
        ones: u64,
        /// Word size: each shard is `w` packets.
        w: usize,
    },
}

/// A systematic maximum-distance-separable erasure code.
///
/// A codec splits a value into `k` *data shards* and derives `m` *parity
/// shards*; the original data is recoverable from **any** `k` of the
/// `k + m` shards (the MDS property), tolerating up to `m` erasures.
///
/// Shards are indexed `0..k` (data) then `k..k+m` (parity). All shards in a
/// stripe have equal length, which must be a multiple of
/// [`shard_alignment`](ErasureCodec::shard_alignment).
///
/// Implementations are [`Send`] + [`Sync`] so a single codec can be shared
/// across encoder threads.
pub trait ErasureCodec: Send + Sync + fmt::Debug {
    /// Number of data shards (`k`).
    fn data_shards(&self) -> usize;

    /// Number of parity shards (`m`).
    fn parity_shards(&self) -> usize;

    /// Total shards (`k + m`).
    fn total_shards(&self) -> usize {
        self.data_shards() + self.parity_shards()
    }

    /// Required alignment of each shard length, in bytes.
    fn shard_alignment(&self) -> usize;

    /// Short human-readable codec name (e.g. `"RS_Van"`).
    fn name(&self) -> &'static str;

    /// Which kernel family this codec uses and how much work one stripe is
    /// (see [`CostProfile`]).
    fn cost_profile(&self) -> CostProfile;

    /// Computes parity shards from data shards.
    ///
    /// `data` must contain exactly `k` equal-length slices, `parity` exactly
    /// `m` equal-length buffers of the same length.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::ShapeMismatch`] or
    /// [`ErasureError::BadAlignment`] on malformed input.
    fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), ErasureError>;

    /// Recovers all missing shards in place.
    ///
    /// `shards` must have length `k + m`; present shards are `Some` and must
    /// share one length. On success every slot is `Some` and data shards
    /// hold the original content.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::TooManyErasures`] when fewer than `k` shards
    /// survive, or a shape error on malformed input.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError>;
}

/// Validates the common shard-shape preconditions shared by all codecs.
pub(crate) fn check_encode_shape(
    k: usize,
    m: usize,
    alignment: usize,
    data: &[&[u8]],
    parity: &[&mut [u8]],
) -> Result<usize, ErasureError> {
    if data.len() != k {
        return Err(ErasureError::ShapeMismatch {
            detail: format!("expected {k} data shards, got {}", data.len()),
        });
    }
    if parity.len() != m {
        return Err(ErasureError::ShapeMismatch {
            detail: format!("expected {m} parity shards, got {}", parity.len()),
        });
    }
    let len = data[0].len();
    if data.iter().any(|s| s.len() != len) || parity.iter().any(|s| s.len() != len) {
        return Err(ErasureError::ShapeMismatch {
            detail: "all shards must have equal length".to_owned(),
        });
    }
    if !len.is_multiple_of(alignment) {
        return Err(ErasureError::BadAlignment {
            shard_len: len,
            alignment,
        });
    }
    Ok(len)
}

/// Validates reconstruction input and returns the common shard length.
pub(crate) fn check_reconstruct_shape(
    k: usize,
    m: usize,
    alignment: usize,
    shards: &[Option<Vec<u8>>],
) -> Result<usize, ErasureError> {
    if shards.len() != k + m {
        return Err(ErasureError::ShapeMismatch {
            detail: format!("expected {} shard slots, got {}", k + m, shards.len()),
        });
    }
    let present: Vec<&Vec<u8>> = shards.iter().flatten().collect();
    if present.len() < k {
        return Err(ErasureError::TooManyErasures {
            present: present.len(),
            required: k,
        });
    }
    let len = present[0].len();
    if present.iter().any(|s| s.len() != len) {
        return Err(ErasureError::ShapeMismatch {
            detail: "all present shards must have equal length".to_owned(),
        });
    }
    if !len.is_multiple_of(alignment) {
        return Err(ErasureError::BadAlignment {
            shard_len: len,
            alignment,
        });
    }
    Ok(len)
}

/// Selects one of the three implemented codec families.
///
/// Mirrors the paper's Jerasure study: `RS_Van`, `CRS`, `R6-Lib`.
///
/// # Example
///
/// ```
/// use eckv_erasure::CodecKind;
///
/// let codec = CodecKind::CauchyRs.build(4, 2)?;
/// assert_eq!(codec.total_shards(), 6);
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Reed-Solomon with a systematized Vandermonde generator matrix.
    RsVan,
    /// Cauchy Reed-Solomon over a bit-matrix (XOR-only encoding).
    CauchyRs,
    /// RAID-6 Liberation minimum-density codes (requires `m == 2`).
    Liberation,
}

impl CodecKind {
    /// All codec kinds, in the order the paper plots them.
    pub const ALL: [CodecKind; 3] = [CodecKind::RsVan, CodecKind::CauchyRs, CodecKind::Liberation];

    /// Constructs a boxed codec with the given `(k, m)`.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] when the family does not
    /// support the shape (e.g. Liberation with `m != 2`).
    pub fn build(self, k: usize, m: usize) -> Result<Box<dyn ErasureCodec>, ErasureError> {
        Ok(match self {
            CodecKind::RsVan => Box::new(RsVandermonde::new(k, m)?),
            CodecKind::CauchyRs => Box::new(CauchyRs::new(k, m)?),
            CodecKind::Liberation => Box::new(Liberation::new(k, m)?),
        })
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::RsVan => "RS_Van",
            CodecKind::CauchyRs => "CRS",
            CodecKind::Liberation => "R6-Lib",
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_kinds() {
        for kind in CodecKind::ALL {
            let c = kind.build(3, 2).expect("3+2 is valid for all kinds");
            assert_eq!(c.data_shards(), 3);
            assert_eq!(c.parity_shards(), 2);
            assert_eq!(c.total_shards(), 5);
            assert_eq!(c.name(), kind.label());
        }
    }

    #[test]
    fn liberation_rejects_m3() {
        assert!(matches!(
            CodecKind::Liberation.build(3, 3),
            Err(ErasureError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(CodecKind::RsVan.to_string(), "RS_Van");
        assert_eq!(CodecKind::CauchyRs.to_string(), "CRS");
        assert_eq!(CodecKind::Liberation.to_string(), "R6-Lib");
    }

    #[test]
    fn shape_checks_reject_bad_input() {
        let d1 = [1u8, 2, 3];
        let d2 = [4u8, 5];
        let data: Vec<&[u8]> = vec![&d1, &d2];
        let mut p1 = vec![0u8; 3];
        let parity: Vec<&mut [u8]> = vec![&mut p1];
        assert!(matches!(
            check_encode_shape(2, 1, 1, &data, &parity),
            Err(ErasureError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn reconstruct_shape_checks() {
        let shards = vec![Some(vec![0u8; 4]), None, None];
        assert!(matches!(
            check_reconstruct_shape(2, 1, 1, &shards),
            Err(ErasureError::TooManyErasures {
                present: 1,
                required: 2
            })
        ));
        let shards = vec![Some(vec![0u8; 4]), Some(vec![0u8; 3]), None];
        assert!(matches!(
            check_reconstruct_shape(2, 1, 1, &shards),
            Err(ErasureError::ShapeMismatch { .. })
        ));
        let shards = vec![Some(vec![0u8; 3]), Some(vec![0u8; 3]), None];
        assert!(matches!(
            check_reconstruct_shape(2, 1, 2, &shards),
            Err(ErasureError::BadAlignment { .. })
        ));
    }
}
