//! Parallel bulk encoding for offline workloads.
//!
//! Online operations encode one value at a time on the critical path; the
//! offline paths (burst-buffer flush, re-protection after repair, bulk
//! loads) encode thousands of stripes with no ordering constraint. This
//! module fans that work out across threads — codecs are `Sync`, so one
//! instance serves all workers.

use std::thread;

use crate::stripe::{EncodedStripe, Striper};

/// Encodes every value, in order, using up to `threads` worker threads.
///
/// Returns one stripe per input value, positionally. With `threads <= 1`
/// (or a single value) this is a plain serial loop.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
///
/// # Example
///
/// ```
/// use eckv_erasure::{parallel, CodecKind, Striper};
///
/// let striper = Striper::from(CodecKind::RsVan.build(3, 2)?);
/// let values: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 4096]).collect();
/// let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
/// let stripes = parallel::encode_batch(&striper, &refs, 4);
/// assert_eq!(stripes.len(), 16);
/// assert_eq!(stripes[3], striper.encode_value(&values[3]));
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
pub fn encode_batch(striper: &Striper, values: &[&[u8]], threads: usize) -> Vec<EncodedStripe> {
    if threads <= 1 || values.len() <= 1 {
        return values.iter().map(|v| striper.encode_value(v)).collect();
    }
    let threads = threads.min(values.len());
    let mut out: Vec<Option<EncodedStripe>> = vec![None; values.len()];

    thread::scope(|scope| {
        // Striped partitioning: chunk the output so each worker owns a
        // contiguous &mut region.
        let chunk = values.len().div_ceil(threads);
        let mut rest: &mut [Option<EncodedStripe>] = &mut out;
        let mut start = 0;
        for _ in 0..threads {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let my_values = &values[start..start + take];
            start += take;
            scope.spawn(move || {
                for (slot, v) in mine.iter_mut().zip(my_values) {
                    *slot = Some(striper.encode_value(v));
                }
            });
        }
    });

    out.into_iter()
        .map(|s| s.expect("every slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecKind;

    fn striper() -> Striper {
        Striper::from(CodecKind::RsVan.build(3, 2).unwrap())
    }

    #[test]
    fn parallel_matches_serial_for_every_thread_count() {
        let s = striper();
        let values: Vec<Vec<u8>> = (0..37)
            .map(|i| (0..(i * 131 + 1)).map(|j| (i + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let serial = encode_batch(&s, &refs, 1);
        for threads in [2usize, 3, 4, 8, 64] {
            let parallel = encode_batch(&s, &refs, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let s = striper();
        assert!(encode_batch(&s, &[], 4).is_empty());
        let v = vec![7u8; 100];
        let one = encode_batch(&s, &[&v], 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], s.encode_value(&v));
    }

    #[test]
    fn all_codec_kinds_are_sync_enough() {
        for kind in CodecKind::ALL {
            let s = Striper::from(kind.build(3, 2).unwrap());
            let values: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 2000]).collect();
            let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
            let a = encode_batch(&s, &refs, 4);
            let b = encode_batch(&s, &refs, 1);
            assert_eq!(a, b, "{kind}");
        }
    }
}
