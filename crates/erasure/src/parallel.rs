//! Parallel bulk encoding for offline workloads.
//!
//! Online operations encode one value at a time on the critical path; the
//! offline paths (burst-buffer flush, re-protection after repair, bulk
//! loads) encode thousands of stripes with no ordering constraint. This
//! module fans that work out across threads — codecs are `Sync`, so one
//! instance serves all workers.
//!
//! # Scheduling
//!
//! Work is distributed through a shared `ChunkQueue` rather than static
//! striped partitioning. Static striping assigns each worker a fixed
//! contiguous range up front, so one oversized value (or one slow core)
//! leaves every other worker idle once its own stripe is done. With the
//! shared queue, workers *claim* chunks as they finish — a worker stuck on
//! a 1 MB value keeps exactly that value while its peers drain the rest of
//! the batch, which is the work-stealing behaviour that matters for skewed
//! value-size distributions. Chunk sizes follow guided self-scheduling:
//! large claims early (amortizing the atomic operation), shrinking toward
//! single values at the tail so the finish line stays balanced.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::stripe::{EncodedStripe, Striper};

/// Upper bound on one claim, keeping the tail granular even for huge
/// batches.
const MAX_CLAIM: usize = 32;

/// A lock-free queue of item indices `0..total` that workers claim in
/// shrinking chunks (guided self-scheduling).
struct ChunkQueue {
    next: AtomicUsize,
    total: usize,
    workers: usize,
}

impl ChunkQueue {
    fn new(total: usize, workers: usize) -> Self {
        ChunkQueue {
            next: AtomicUsize::new(0),
            total,
            workers: workers.max(1),
        }
    }

    /// Claims the next chunk of indices, or `None` when the batch is
    /// drained. Claim size is `remaining / (4 * workers)`, clamped to
    /// `1..=MAX_CLAIM`: coarse while there is plenty of work, one item at
    /// a time near the end.
    fn claim(&self) -> Option<Range<usize>> {
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= self.total {
                return None;
            }
            let remaining = self.total - start;
            let size = (remaining / (4 * self.workers)).clamp(1, MAX_CLAIM);
            if self
                .next
                .compare_exchange_weak(start, start + size, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(start..start + size);
            }
        }
    }
}

/// Encodes every value, in order, using up to `threads` worker threads.
///
/// Returns one stripe per input value, positionally — identical to a
/// serial loop for any thread count (workers only race for *which* items
/// they encode, never over an item's bytes). With `threads <= 1` (or a
/// single value) this is a plain serial loop.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
///
/// # Example
///
/// ```
/// use eckv_erasure::{parallel, CodecKind, Striper};
///
/// let striper = Striper::from(CodecKind::RsVan.build(3, 2)?);
/// let values: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 4096]).collect();
/// let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
/// let stripes = parallel::encode_batch(&striper, &refs, 4);
/// assert_eq!(stripes.len(), 16);
/// assert_eq!(stripes[3], striper.encode_value(&values[3]));
/// # Ok::<(), eckv_erasure::ErasureError>(())
/// ```
pub fn encode_batch(striper: &Striper, values: &[&[u8]], threads: usize) -> Vec<EncodedStripe> {
    if threads <= 1 || values.len() <= 1 {
        return values.iter().map(|v| striper.encode_value(v)).collect();
    }
    let threads = threads.min(values.len());
    let queue = ChunkQueue::new(values.len(), threads);
    let mut out: Vec<Option<EncodedStripe>> = vec![None; values.len()];

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut mine: Vec<(usize, EncodedStripe)> = Vec::new();
                    while let Some(range) = queue.claim() {
                        for i in range {
                            mine.push((i, striper.encode_value(values[i])));
                        }
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (i, stripe) in handle.join().expect("worker panicked") {
                out[i] = Some(stripe);
            }
        }
    });

    out.into_iter()
        .map(|s| s.expect("claims cover every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecKind;

    fn striper() -> Striper {
        Striper::from(CodecKind::RsVan.build(3, 2).unwrap())
    }

    #[test]
    fn parallel_matches_serial_for_every_thread_count() {
        let s = striper();
        let values: Vec<Vec<u8>> = (0..37)
            .map(|i| (0..(i * 131 + 1)).map(|j| (i + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let serial = encode_batch(&s, &refs, 1);
        for threads in [2usize, 3, 4, 8, 64] {
            let parallel = encode_batch(&s, &refs, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let s = striper();
        assert!(encode_batch(&s, &[], 4).is_empty());
        let v = vec![7u8; 100];
        let one = encode_batch(&s, &[&v], 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], s.encode_value(&v));
    }

    #[test]
    fn all_codec_kinds_are_sync_enough() {
        for kind in CodecKind::ALL {
            let s = Striper::from(kind.build(3, 2).unwrap());
            let values: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 2000]).collect();
            let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
            let a = encode_batch(&s, &refs, 4);
            let b = encode_batch(&s, &refs, 1);
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn skewed_value_sizes_match_serial() {
        // The workload the scheduler exists for: one 1 MB value buried in a
        // batch of 4 KB values. Whatever the claim interleaving, output
        // must equal the serial encode positionally.
        let s = striper();
        let mut values: Vec<Vec<u8>> = (0..63)
            .map(|i| (0..4096).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        values.insert(17, (0..1 << 20).map(|j| (j * 7) as u8).collect());
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        let serial = encode_batch(&s, &refs, 1);
        for threads in [2usize, 4, 8] {
            let parallel = encode_batch(&s, &refs, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn chunk_queue_partitions_exactly_once() {
        // Single-threaded drain: claims must tile 0..total with no gaps,
        // no overlaps, and shrink toward the tail.
        let q = ChunkQueue::new(1000, 4);
        let mut covered = 0usize;
        let mut last_size = usize::MAX;
        let mut tail_sizes = Vec::new();
        while let Some(r) = q.claim() {
            assert_eq!(r.start, covered, "claims must be contiguous");
            assert!(r.end <= 1000);
            covered = r.end;
            let size = r.len();
            assert!((1..=MAX_CLAIM).contains(&size));
            // Guided self-scheduling: sizes never grow as work drains.
            assert!(size <= last_size, "claim sizes must not grow");
            last_size = size;
            tail_sizes.push(size);
        }
        assert_eq!(covered, 1000, "every index claimed exactly once");
        assert_eq!(
            *tail_sizes.last().unwrap(),
            1,
            "tail claims are single items"
        );
    }

    #[test]
    fn chunk_queue_lets_free_workers_drain_a_stuck_peer_backlog() {
        // Deterministic stand-in for the skewed-size scenario: worker A
        // claims once and then stalls (as if encoding the 1 MB value);
        // worker B must be able to claim everything that remains. Under
        // the old static striping, A's half of the batch would have sat
        // idle behind the big value.
        let q = ChunkQueue::new(64, 2);
        let stuck = q.claim().expect("work available");
        let mut b_items = 0;
        while let Some(r) = q.claim() {
            b_items += r.len();
        }
        assert_eq!(stuck.len() + b_items, 64);
        assert!(
            b_items > 64 / 2,
            "the free worker must take more than a static half-split: {b_items}"
        );
    }

    #[test]
    fn chunk_queue_is_exact_under_concurrent_claims() {
        use std::sync::Mutex;
        let q = ChunkQueue::new(5000, 8);
        let claimed = Mutex::new(vec![false; 5000]);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some(r) = q.claim() {
                        let mut seen = claimed.lock().unwrap();
                        for i in r {
                            assert!(!seen[i], "index {i} claimed twice");
                            seen[i] = true;
                        }
                    }
                });
            }
        });
        assert!(
            claimed.lock().unwrap().iter().all(|&c| c),
            "every index claimed"
        );
    }
}
