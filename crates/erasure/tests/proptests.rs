// The proptest suites need the external `proptest` crate, which cannot be
// fetched in offline builds. They are gated behind the off-by-default
// `extern-dev-deps` cargo feature; see the workspace Cargo.toml to re-enable.
#![cfg(feature = "extern-dev-deps")]
//! Property tests: encode -> erase (<= m) -> reconstruct == identity.

use eckv_erasure::{CodecKind, Striper};
use proptest::prelude::*;

fn erase_pattern(n: usize, m: usize, seed: u64) -> Vec<usize> {
    // Pick up to m distinct indices pseudo-randomly from 0..n.
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let count = (seed % (m as u64 + 1)) as usize;
    idx.truncate(count);
    idx
}

fn roundtrip(kind: CodecKind, k: usize, m: usize, value: &[u8], seed: u64) {
    let striper = Striper::from(kind.build(k, m).expect("valid shape"));
    let stripe = striper.encode_value(value);
    let n = k + m;
    let mut shards: Vec<Option<Vec<u8>>> = stripe.shards.iter().cloned().map(Some).collect();
    for e in erase_pattern(n, m, seed) {
        shards[e] = None;
    }
    let got = striper
        .decode_value(&mut shards, stripe.original_len)
        .expect("within tolerance");
    assert_eq!(got, value);
    // Repair must regenerate parity identical to the original encode.
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.as_ref().unwrap(), &stripe.shards[i], "shard {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs_van_roundtrips(
        value in proptest::collection::vec(any::<u8>(), 0..4096),
        k in 1usize..8,
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        roundtrip(CodecKind::RsVan, k, m, &value, seed);
    }

    #[test]
    fn cauchy_roundtrips(
        value in proptest::collection::vec(any::<u8>(), 0..4096),
        k in 1usize..8,
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        roundtrip(CodecKind::CauchyRs, k, m, &value, seed);
    }

    #[test]
    fn liberation_roundtrips(
        value in proptest::collection::vec(any::<u8>(), 0..4096),
        k in 1usize..12,
        seed in any::<u64>(),
    ) {
        roundtrip(CodecKind::Liberation, k, 2, &value, seed);
    }

    #[test]
    fn lrc_roundtrips_exactly_when_the_oracle_says_recoverable(
        value in proptest::collection::vec(any::<u8>(), 1..2048),
        lost_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        use eckv_erasure::{ErasureCodec, Lrc, Striper};
        use std::sync::Arc;
        let lrc = Lrc::new(4, 2, 2).expect("valid");
        let lost: Vec<usize> = lost_mask
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| i)
            .collect();
        let recoverable = lrc.is_recoverable(&lost);
        let striper = Striper::new(Arc::new(lrc) as Arc<dyn ErasureCodec>);
        let stripe = striper.encode_value(&value);
        let mut shards: Vec<Option<Vec<u8>>> =
            stripe.shards.iter().cloned().map(Some).collect();
        let present = 8 - lost.len();
        for &i in &lost {
            shards[i] = None;
        }
        match striper.decode_value(&mut shards, stripe.original_len) {
            Ok(got) => {
                prop_assert!(recoverable, "decode succeeded on an unrecoverable pattern");
                prop_assert_eq!(got, value);
            }
            Err(_) => {
                // The trait-level shape check also rejects < k survivors.
                prop_assert!(!recoverable || present < 4);
            }
        }
    }

    #[test]
    fn stripes_are_backend_invariant(
        value in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        // GF arithmetic is exact, so a stripe encoded under any kernel
        // backend must be byte-identical — this is what keeps golden
        // traces stable whatever hardware runs the suite.
        use std::sync::{Mutex, OnceLock};
        use eckv_gf::kernels::{active_backend, force_backend, ALL_BACKENDS};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let _guard = LOCK
            .get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let prev = active_backend();
        for kind in CodecKind::ALL {
            let striper = Striper::from(kind.build(3, 2).unwrap());
            let mut want = None;
            for backend in ALL_BACKENDS {
                if !backend.is_supported() {
                    continue;
                }
                force_backend(backend);
                let stripe = striper.encode_value(&value);
                match &want {
                    None => want = Some(stripe),
                    Some(w) => prop_assert_eq!(
                        &stripe, w, "{} stripe diverges on {:?}", kind, backend
                    ),
                }
            }
        }
        force_backend(prev);
    }

    #[test]
    fn codecs_agree_on_data_shards(
        value in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        // All systematic codes must lay out the data shards identically
        // modulo alignment padding: concatenated data shards start with the
        // original value.
        for kind in CodecKind::ALL {
            let striper = Striper::from(kind.build(3, 2).unwrap());
            let stripe = striper.encode_value(&value);
            let joined: Vec<u8> = stripe.shards[..3].concat();
            prop_assert_eq!(&joined[..value.len()], &value[..], "{}", kind);
        }
    }
}
