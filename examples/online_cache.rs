//! Online data-processing scenario: a skewed YCSB workload (the paper's
//! Section VI-C) comparing asynchronous replication with online erasure
//! coding on a multi-client cluster.
//!
//! ```text
//! cargo run --release --example online_cache
//! ```

use eckv::prelude::*;
use eckv::ycsb::{self, Workload, YcsbConfig};

fn run_variant(label: &str, scheme: Scheme, value_len: u64) {
    let clients = 30;
    let world = World::new(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::SdscComet, 5, clients)
                .client_nodes(5)
                .server_memory(64 << 30),
            scheme,
        )
        .validate(false), // hot keys are concurrently updated; stale reads are fine
    );
    let cfg = YcsbConfig {
        workload: Workload::A,
        record_count: 5_000,
        ops_per_client: 200,
        clients,
        value_len,
        seed: 2017,
    };
    let mut sim = Simulation::new();
    let report = ycsb::run(&world, &mut sim, &cfg);
    println!(
        "{label:<12} {:>4}KB  {:>9.0} ops/s  read {:>8.1} us  write {:>8.1} us",
        value_len >> 10,
        report.throughput,
        report.read_latency.mean.as_micros_f64(),
        report.write_latency.mean.as_micros_f64(),
    );
}

fn main() {
    println!("YCSB-A (50:50, Zipfian), 30 clients on SDSC-Comet (IB FDR):\n");
    for value_len in [4u64 << 10, 32 << 10] {
        run_variant("Async-Rep=3", Scheme::AsyncRep { replicas: 3 }, value_len);
        run_variant("Era-CE-CD", Scheme::era_ce_cd(3, 2), value_len);
        run_variant("Era-SE-CD", Scheme::era_se_cd(3, 2), value_len);
        println!();
    }
    println!(
        "Note how erasure coding pulls ahead at 32 KB: its chunks stay under\n\
         the 16 KB eager/rendezvous threshold while replication pays the\n\
         rendezvous handshake on every full-size copy."
    );
}
