//! Failure-injection walkthrough: what each resilience scheme can and
//! cannot survive, and what degraded reads cost.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use eckv::prelude::*;

const KEYS: usize = 200;

fn load(world: &std::rc::Rc<World>, sim: &mut Simulation) {
    let writes: Vec<Op> = (0..KEYS)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0);
}

fn read_all(world: &std::rc::Rc<World>, sim: &mut Simulation) -> (u64, f64) {
    world.reset_metrics();
    let reads: Vec<Op> = (0..KEYS).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(world, sim, vec![reads]);
    let m = world.metrics.borrow();
    (m.errors, m.get_latency.mean().as_micros_f64())
}

fn demo(label: &str, scheme: Scheme) {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        scheme,
    ));
    let mut sim = Simulation::new();
    load(&world, &mut sim);

    let (errors, us) = read_all(&world, &mut sim);
    println!("{label:<12} healthy:    {errors:>3} errors, {us:>7.1} us/get");

    for kill in [1usize, 3] {
        world.cluster.kill_server(kill);
        let (errors, us) = read_all(&world, &mut sim);
        let dead = 5 - world.cluster.alive_servers().len();
        println!("{label:<12} {dead} failure(s): {errors:>3} errors, {us:>7.1} us/get");
    }
    // A third failure exceeds every scheme's budget here.
    world.cluster.kill_server(0);
    let (errors, _) = read_all(&world, &mut sim);
    println!(
        "{label:<12} 3 failures: {errors:>3} errors (tolerance is {})\n",
        scheme.fault_tolerance()
    );
}

fn main() {
    println!("64 KB values, 5-node RI-QDR cluster, {KEYS} keys:\n");
    demo("NoRep", Scheme::NoRep);
    demo("Async-Rep=3", Scheme::AsyncRep { replicas: 3 });
    demo("Era-CE-CD", Scheme::era_ce_cd(3, 2));
    demo("Era-SE-SD", Scheme::era_se_sd(3, 2));
    println!(
        "Replication reads stay flat under failures (fail-over to a replica);\n\
         erasure-coded degraded reads pay chunk aggregation plus decode, the\n\
         trade the paper quantifies in Figures 8(c) and 9(b)."
    );
}
