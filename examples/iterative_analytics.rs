//! Iterative (Spark-style) analytics over the resilient cache: the
//! paper's future-work scenario where erasure coding's memory efficiency
//! becomes iteration speed.
//!
//! ```text
//! cargo run --release --example iterative_analytics
//! ```

use eckv::boldio::{run_iterative, IterativeConfig, LustreConfig};
use eckv::prelude::*;

fn main() {
    // A 160 MB working set swept 3 times against 5 x 64 MB of cache.
    // 3x replication wants ~490 MB (thrashes); RS(3,2) wants ~280 MB (fits).
    let cfg = IterativeConfig::new(160 << 20);
    let mem = 64u64 << 20;

    println!(
        "3-iteration sweep, {} MB working set, {} MB aggregate cache:\n",
        cfg.working_set >> 20,
        (mem * 5) >> 20
    );
    for (label, scheme) in [
        ("Async-Rep=3", Scheme::AsyncRep { replicas: 3 }),
        ("Era-CE-CD", Scheme::era_ce_cd(3, 2)),
    ] {
        let world = World::new(
            EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, 5, cfg.tasks)
                    .client_nodes(cfg.hosts)
                    .server_memory(mem),
                scheme,
            )
            .window(8)
            .validate(false),
        );
        let mut sim = Simulation::new();
        let r = run_iterative(&world, &mut sim, &cfg, &LustreConfig::RI_QDR);
        print!("{label:<12} mean {}  misses/iter", r.mean_iteration);
        for (t, m) in r.iteration_times.iter().zip(&r.misses_per_iteration) {
            print!("  [{t}, {m} misses]");
        }
        println!();
    }
    println!(
        "\nReplication's 3x footprint overflows the cache, so every sweep\n\
         refetches evicted blocks from the parallel filesystem; the erasure-\n\
         coded cache holds the whole set and every iteration runs from RAM."
    );
}
