//! Offline analytics scenario: Hadoop TestDFSIO through the Boldio burst
//! buffer over Lustre (the paper's Section V / Figure 13), comparing
//! direct parallel-filesystem I/O against the resilient key-value buffer.
//!
//! ```text
//! cargo run --release --example burst_buffer
//! ```

use eckv::boldio::{testdfsio, DfsioConfig, LustreConfig};
use eckv::prelude::*;

fn main() {
    // A 4 GB TestDFSIO job: 32 map tasks on 8 DataNodes for Boldio,
    // 48 maps on 12 DataNodes for Lustre-Direct (the paper's fair split).
    let cfg = DfsioConfig::paper(4 << 30);
    let lustre = LustreConfig::RI_QDR;

    println!("TestDFSIO, 4 GB job, RI-QDR cluster:\n");
    let direct = testdfsio::run_lustre_direct(&cfg, &lustre);
    println!(
        "{:<18} write {:>6.0} MB/s   read {:>6.0} MB/s",
        "Lustre-Direct", direct.write_mbps, direct.read_mbps
    );

    for (label, scheme) in [
        ("Boldio_Async-Rep", Scheme::AsyncRep { replicas: 3 }),
        ("Boldio_Era-CE-CD", Scheme::era_ce_cd(3, 2)),
        ("Boldio_Era-SE-CD", Scheme::era_se_cd(3, 2)),
    ] {
        let world = World::new(
            EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, 5, cfg.buffer_maps())
                    .client_nodes(cfg.buffer_hosts)
                    .server_memory(24 << 30),
                scheme,
            )
            .window(cfg.pipeline)
            .validate(false),
        );
        let mut sim = Simulation::new();
        let r = testdfsio::run_boldio(&world, &mut sim, &cfg, &lustre);
        println!(
            "{label:<18} write {:>6.0} MB/s   read {:>6.0} MB/s   buffer {:>5.1} GB   flush {}",
            r.write_mbps,
            r.read_mbps,
            r.buffer_memory_used as f64 / (1u64 << 30) as f64,
            r.flush_time,
        );
    }

    println!(
        "\nThe burst buffer accelerates both phases; erasure coding matches\n\
         replication's speed while holding ~1.8x less buffer memory."
    );
}
