//! The simplest way in: a blocking session against a resilient cluster.
//!
//! ```text
//! cargo run --example kv_session
//! ```

use eckv::prelude::*;
use eckv::session::KvSession;

fn main() -> Result<(), eckv::session::SessionError> {
    // RS(3,2) over 5 simulated RI-QDR nodes: 1.67x storage, 2-failure
    // tolerance.
    let mut kv = KvSession::new(ClusterProfile::RiQdr, Scheme::era_ce_cd(3, 2), 5);

    for (key, value) in [
        ("config/feature-flags", "erasure=on,replication=off"),
        ("user:1001", "alice"),
        ("user:1002", "bob"),
    ] {
        kv.set(key, value.as_bytes().to_vec())?;
    }
    println!("stored 3 values ({} of virtual time)", kv.elapsed());

    // Lose the maximum tolerable number of servers...
    kv.kill_server(0);
    kv.kill_server(4);
    let alice = kv.get("user:1001")?.expect("decoded from surviving chunks");
    println!(
        "after 2 failures, user:1001 = {:?}",
        String::from_utf8(alice).unwrap()
    );

    // ...swap in a replacement node and re-protect everything.
    let report = kv.repair_server(0);
    println!(
        "repair: {} keys re-protected, {:.1} KB read, {:.1} KB written, {}",
        report.keys_repaired,
        report.bytes_read as f64 / 1024.0,
        report.bytes_written as f64 / 1024.0,
        report.elapsed,
    );

    // A different failure is tolerable again.
    kv.kill_server(2);
    assert!(kv.get("user:1002")?.is_some());
    println!("cluster survived a fresh failure after repair");
    Ok(())
}
