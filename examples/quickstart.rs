//! Quickstart: store and fetch values on an erasure-coded 5-node cluster.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eckv::prelude::*;

fn main() {
    // Deploy 5 simulated RDMA servers (the paper's RI-QDR testbed) and one
    // client, protected by online Reed-Solomon RS(3,2): every value is
    // split into 3 data chunks + 2 parity chunks, tolerating any 2 server
    // failures at 1.67x storage instead of replication's 3x.
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();

    // Write a handful of real values (non-blocking, pipelined), then wait.
    let writes: Vec<Op> = (0..8)
        .map(|i| {
            Op::set_inline(
                format!("user:{i}"),
                format!("profile data for user {i}").into_bytes(),
            )
        })
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    println!(
        "wrote 8 values in {} of simulated time",
        world.metrics.borrow().elapsed()
    );

    // Two servers die...
    world.cluster.kill_server(1);
    world.cluster.kill_server(3);
    println!("killed servers 1 and 3 (the maximum RS(3,2) tolerates)");

    // ...and every value is still readable: degraded reads fetch parity
    // chunks and decode on the fly.
    world.reset_metrics();
    let reads: Vec<Op> = (0..8).map(|i| Op::get(format!("user:{i}"))).collect();
    run_workload(&world, &mut sim, vec![reads]);

    let m = world.metrics.borrow();
    println!(
        "read back 8/{} values, {} errors, {} integrity failures, avg latency {}",
        m.get_count,
        m.errors,
        m.integrity_errors,
        m.get_latency.mean(),
    );
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);

    // Memory story: what would replication have used?
    let era = Scheme::era_ce_cd(3, 2).storage_factor();
    let rep = Scheme::AsyncRep { replicas: 3 }.storage_factor();
    println!("storage overhead: erasure {era:.2}x vs replication {rep:.2}x");
}
