// The proptest suites need the external `proptest` crate, which cannot be
// fetched in offline builds. They are gated behind the off-by-default
// `extern-dev-deps` cargo feature; see the workspace Cargo.toml to re-enable.
#![cfg(feature = "extern-dev-deps")]
//! Chaos testing with an exact oracle: random interleavings of writes,
//! reads, failures, slowdowns and replacements, checked against a
//! chunk-presence model of the engine's placement/degradation/repair
//! rules. The engine runs with hedged reads enabled, so the oracle also
//! pins down hedging: a slow server is NOT a dead one.
//!
//! Invariants:
//!
//! 1. validated reads NEVER return corrupt data;
//! 2. read success/failure matches the model *exactly* (a read succeeds
//!    iff at least `k` of the key's surviving chunks sit on reachable
//!    servers — late binding tops up from parity);
//! 3. write success matches the model (at least `k` reachable holders);
//! 4. slowing a server (straggler injection) changes NO outcome — reads
//!    and writes behave exactly as on a healthy holder, merely later, and
//!    hedged fetches never corrupt data or flip a result;
//! 5. a repair's outcome matches the model exactly — of the keys placed
//!    on the replaced server, those with at least `k` chunks reachable
//!    elsewhere are rebuilt and the rest written off, and a Slow in
//!    force while the repair runs flips NO key between the two (a
//!    slowed survivor still serves its chunks, merely later);
//! 6. membership churn loses nothing the oracle predicts survivable — a
//!    Join moves chunks onto the new member and a Drain evacuates the
//!    leaver, and after the (blocking) migration every key reads exactly
//!    as the per-slot model predicts: an unchanged slot keeps its chunk,
//!    a moved slot receives one iff the vacated holder could serve it
//!    directly or `k` survivors could reconstruct it, and the new holder
//!    is alive to store it.

use std::collections::{HashMap, HashSet};

use eckv::prelude::*;
use proptest::prelude::*;

const SERVERS: usize = 5;
/// Provisioned spares beyond the initial membership, joinable live.
const SPARES: usize = 2;
const K: usize = 3;

#[derive(Debug, Clone)]
enum ChaosEvent {
    Write { key: u8, len: u16 },
    Read { key: u8 },
    Kill { server: u8 },
    Repair { server: u8 },
    Slow { server: u8, factor: u8 },
    Restore { server: u8 },
    Join,
    Drain { victim: u8 },
}

fn event_strategy() -> impl Strategy<Value = ChaosEvent> {
    prop_oneof![
        4 => (0u8..32, 64u16..8192).prop_map(|(key, len)| ChaosEvent::Write { key, len }),
        4 => (0u8..32).prop_map(|key| ChaosEvent::Read { key }),
        1 => (0u8..SERVERS as u8).prop_map(|server| ChaosEvent::Kill { server }),
        1 => (0u8..SERVERS as u8).prop_map(|server| ChaosEvent::Repair { server }),
        1 => (0u8..SERVERS as u8, 2u8..10).prop_map(|(server, factor)| ChaosEvent::Slow {
            server,
            factor
        }),
        1 => (0u8..SERVERS as u8).prop_map(|server| ChaosEvent::Restore { server }),
        1 => Just(ChaosEvent::Join),
        1 => (0u8..(SERVERS + SPARES) as u8).prop_map(|victim| ChaosEvent::Drain { victim }),
    ]
}

/// The oracle: which servers hold a live chunk of each key.
#[derive(Default)]
struct ChunkModel {
    /// key -> servers currently holding one of its chunks.
    has_chunk: HashMap<u8, HashSet<usize>>,
    alive: Vec<bool>,
}

impl ChunkModel {
    fn new() -> Self {
        ChunkModel {
            has_chunk: HashMap::new(),
            alive: vec![true; SERVERS + SPARES],
        }
    }

    fn reachable(&self, key: u8, targets: &[usize]) -> usize {
        let _ = targets;
        self.has_chunk
            .get(&key)
            .map_or(0, |h| h.iter().filter(|&&s| self.alive[s]).count())
    }

    fn write(&mut self, key: u8, targets: &[usize]) -> bool {
        let stored: HashSet<usize> = targets.iter().copied().filter(|&s| self.alive[s]).collect();
        if stored.len() >= K {
            self.has_chunk.insert(key, stored);
            true
        } else {
            // The engine leaves any previously stored chunks in place when
            // a rewrite fails; the old version remains readable. Model the
            // key as unchanged.
            false
        }
    }

    fn read_ok(&self, key: u8, targets: &[usize]) -> bool {
        self.reachable(key, targets) >= K
    }

    fn kill(&mut self, server: usize) {
        self.alive[server] = false;
    }

    /// Predicts a repair's outcome before it runs: of the keys placed on
    /// `server`, how many can be rebuilt (>= K chunks reachable on other
    /// live servers) and how many are written off. Slowdowns are
    /// deliberately invisible here — a straggling survivor still serves
    /// its chunks, so a Slow in force must not move a key from the first
    /// count to the second.
    fn repair_outcome(&self, server: usize, targets_of: impl Fn(u8) -> Vec<usize>) -> (u64, u64) {
        let (mut repaired, mut lost) = (0u64, 0u64);
        for (&key, holders) in &self.has_chunk {
            if !targets_of(key).contains(&server) {
                continue;
            }
            let reachable = holders
                .iter()
                .filter(|&&h| h != server && self.alive[h])
                .count();
            if reachable >= K {
                repaired += 1;
            } else {
                lost += 1;
            }
        }
        (repaired, lost)
    }

    /// Applies a membership change (one slot of each affected vshard's
    /// group moved) to the chunk model. `old_targets` is the placement
    /// snapshot taken before the change; `targets_of` reads the new one.
    /// Per slot: an unchanged slot keeps its chunk; a moved slot's new
    /// holder receives one iff it is alive AND either the vacated holder
    /// could serve the chunk directly (holds it, alive) or `k` of the
    /// other slots' holders survive for a reconstruction. Stale copies on
    /// vacated holders drop out of the model — the engine never reads
    /// them again.
    fn membership_change(
        &mut self,
        old_targets: &HashMap<u8, Vec<usize>>,
        targets_of: impl Fn(u8) -> Vec<usize>,
    ) {
        let keys: Vec<u8> = self.has_chunk.keys().copied().collect();
        for key in keys {
            let old_t = &old_targets[&key];
            let new_t = targets_of(key);
            let holders = self.has_chunk.get(&key).expect("key present").clone();
            let survivors_of = |slot: usize| {
                new_t
                    .iter()
                    .enumerate()
                    .filter(|&(i, s)| i != slot && holders.contains(s) && self.alive[*s])
                    .count()
            };
            let mut moved: HashSet<usize> = HashSet::new();
            for slot in 0..new_t.len() {
                let (o, n) = (old_t[slot], new_t[slot]);
                if o == n {
                    continue;
                }
                let direct = holders.contains(&o) && self.alive[o];
                if self.alive[n] && (direct || survivors_of(slot) >= K) {
                    moved.insert(n);
                }
            }
            let kept: HashSet<usize> = new_t
                .iter()
                .zip(old_t.iter())
                .filter(|(n, o)| n == o && holders.contains(n))
                .map(|(&n, _)| n)
                .collect();
            self.has_chunk.insert(key, &kept | &moved);
        }
    }

    fn repair(&mut self, server: usize, targets_of: impl Fn(u8) -> Vec<usize>) {
        // Replacement wipes the node, then rebuilds every rebuildable chunk.
        for holders in self.has_chunk.values_mut() {
            holders.remove(&server);
        }
        self.alive[server] = true;
        let keys: Vec<u8> = self.has_chunk.keys().copied().collect();
        for key in keys {
            let targets = targets_of(key);
            if targets.contains(&server) {
                let holders = self.has_chunk.get(&key).expect("key present");
                let reachable = holders.iter().filter(|&&s| self.alive[s]).count();
                if reachable >= K {
                    self.has_chunk
                        .get_mut(&key)
                        .expect("present")
                        .insert(server);
                }
            }
        }
    }
}

/// Replays one chaos event sequence against the engine under `scheme`
/// and checks every outcome against the chunk-presence oracle. Hedging
/// is enabled throughout: speculative fetches race the injected
/// stragglers and must never corrupt data or flip an outcome.
fn run_chaos(
    scheme: Scheme,
    events: Vec<ChaosEvent>,
    seed: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    {
        let world = World::new(
            EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, SERVERS, 1).max_servers(SERVERS + SPARES),
                scheme,
            )
            .hedge(HedgeConfig::after(SimDuration::from_micros(50))),
        );
        let mut sim = Simulation::new();
        let mut model = ChunkModel::new();
        let mut version: u64 = seed;
        // Placement is read through the vshard layer, so the closure
        // tracks membership churn: after a Join or Drain it returns the
        // NEW width-`SERVERS` group for the key.
        let targets_of = |world: &std::rc::Rc<World>, key: u8| -> Vec<usize> {
            world
                .cluster
                .targets_for(format!("x{key}").as_bytes(), SERVERS)
                .expect("chaos never drains below the scheme width")
        };

        for event in events {
            match event {
                ChaosEvent::Write { key, len } => {
                    version = version.wrapping_add(1);
                    world.reset_metrics();
                    eckv::core::driver::run_workload(
                        &world,
                        &mut sim,
                        vec![vec![Op::set_synthetic(
                            format!("x{key}"),
                            len as u64,
                            version,
                        )]],
                    );
                    let engine_ok = world.metrics.borrow().errors == 0;
                    let model_ok = model.write(key, &targets_of(&world, key));
                    prop_assert_eq!(
                        engine_ok,
                        model_ok,
                        "write({}) diverged from the oracle",
                        key
                    );
                    prop_assert_eq!(world.metrics.borrow().integrity_errors, 0);
                }
                ChaosEvent::Read { key } => {
                    world.reset_metrics();
                    eckv::core::driver::run_workload(
                        &world,
                        &mut sim,
                        vec![vec![Op::get(format!("x{key}"))]],
                    );
                    let m = world.metrics.borrow();
                    prop_assert_eq!(m.integrity_errors, 0, "corruption on read({})", key);
                    let engine_ok = m.errors == 0;
                    let model_ok = model.read_ok(key, &targets_of(&world, key));
                    prop_assert_eq!(
                        engine_ok,
                        model_ok,
                        "read({}) diverged from the oracle (reachable chunks: {})",
                        key,
                        model.reachable(key, &targets_of(&world, key))
                    );
                }
                ChaosEvent::Kill { server } => {
                    let s = server as usize;
                    if world.cluster.is_server_alive(s) {
                        world.cluster.kill_server(s);
                        model.kill(s);
                    }
                }
                ChaosEvent::Repair { server } => {
                    let s = server as usize;
                    let w = world.clone();
                    let (want_repaired, want_lost) =
                        model.repair_outcome(s, |key| targets_of(&w, key));
                    let report = eckv::core::repair_server(&world, &mut sim, s);
                    prop_assert_eq!(
                        (report.keys_repaired, report.keys_lost),
                        (want_repaired, want_lost),
                        "repair({}) diverged from the oracle",
                        s
                    );
                    model.repair(s, |key| targets_of(&w, key));
                }
                ChaosEvent::Slow { server, factor } => {
                    // A straggler is alive: the oracle is untouched.
                    world.cluster.slow_server(
                        sim.now(),
                        server as usize,
                        factor as f64,
                        SimDuration::from_micros(100),
                    );
                }
                ChaosEvent::Restore { server } => {
                    world.cluster.restore_server_speed(server as usize);
                }
                ChaosEvent::Join => {
                    let w = world.clone();
                    let old: HashMap<u8, Vec<usize>> =
                        (0..32).map(|key| (key, targets_of(&w, key))).collect();
                    // `None` means the spare pool is exhausted: a no-op
                    // for engine and model alike.
                    if eckv::core::join_server(&world, &mut sim).is_some() {
                        sim.run();
                        model.membership_change(&old, |key| targets_of(&w, key));
                    }
                }
                ChaosEvent::Drain { victim } => {
                    let s = victim as usize;
                    // Only active members leave, and never below the
                    // scheme width (the engine allows it but every op
                    // then fails by design — covered in tests/elastic.rs,
                    // out of scope for this oracle).
                    if world.cluster.is_member(s) && world.cluster.member_count() > SERVERS {
                        let w = world.clone();
                        let old: HashMap<u8, Vec<usize>> =
                            (0..32).map(|key| (key, targets_of(&w, key))).collect();
                        eckv::core::drain_server(&world, &mut sim, s);
                        sim.run();
                        model.membership_change(&old, |key| targets_of(&w, key));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chaos_matches_the_chunk_presence_oracle(
        events in proptest::collection::vec(event_strategy(), 10..80),
        seed in any::<u64>(),
    ) {
        run_chaos(Scheme::era_ce_cd(3, 2), events, seed)?;
    }

    #[test]
    fn sd_chaos_matches_the_chunk_presence_oracle(
        events in proptest::collection::vec(event_strategy(), 10..80),
        seed in any::<u64>(),
    ) {
        // Server-decode: the aggregation fan-in (and its hedging) runs on
        // the same fan-out core and must satisfy the same oracle.
        run_chaos(Scheme::era_se_sd(3, 2), events, seed)?;
    }
}
