//! End-to-end TraceBus guarantees: a traced run emits the full event
//! vocabulary with virtual timestamps, two identical runs produce
//! byte-identical trace text, and a disabled trace stays invisible.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, SimDuration, Trace, TraceBus};

/// Runs the canonical Era-CE-CD write/kill/read workload with a JSONL sink
/// attached and returns (trace text, events emitted, series CSV).
fn traced_run(ops: usize) -> (String, u64, String) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    bus.enable_series(SimDuration::from_millis(10));
    let trace = Trace::from_bus(bus);

    let world = World::new_traced(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            Scheme::era_ce_cd(3, 2),
        ),
        trace.clone(),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    world.cluster.kill_server(1);
    world.reset_metrics();
    let reads: Vec<Op> = (0..ops).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(&world, &mut sim, vec![reads]);
    assert_eq!(world.metrics.borrow().errors, 0);

    let text = sink.borrow().contents().to_string();
    let emitted = trace
        .with_bus(|bus| bus.events_emitted())
        .expect("trace is enabled");
    let series = trace
        .with_bus(|bus| bus.series().expect("series enabled").to_csv())
        .expect("trace is enabled");
    (text, emitted, series)
}

#[test]
fn traced_run_emits_full_event_vocabulary() {
    let (text, emitted, _) = traced_run(50);
    assert!(emitted > 0);
    assert_eq!(text.lines().count() as u64, emitted);
    // Degraded reads past the killed server force decodes; writes encode.
    for needle in [
        "\"event\":\"op_admitted\"",
        "\"event\":\"op_completed\"",
        "\"event\":\"shard_send\"",
        "\"event\":\"shard_recv\"",
        "\"event\":\"nic_queue_enter\"",
        "\"event\":\"nic_queue_exit\"",
        "\"event\":\"encode_start\"",
        "\"event\":\"encode_end\"",
        "\"event\":\"decode_start\"",
        "\"event\":\"decode_end\"",
        "\"event\":\"failure_detected\"",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
    // Every line carries a virtual timestamp and a sequence number.
    for line in text.lines().take(100) {
        assert!(line.starts_with("{\"at_ns\":"), "malformed line: {line}");
        assert!(line.contains("\"seq\":"), "malformed line: {line}");
    }
}

#[test]
fn identical_runs_produce_byte_identical_traces() {
    let (a, emitted_a, series_a) = traced_run(40);
    let (b, emitted_b, series_b) = traced_run(40);
    assert_eq!(emitted_a, emitted_b);
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
    assert_eq!(series_a, series_b);
}

#[test]
fn series_covers_multiple_windows_with_nonzero_throughput() {
    let (_, _, series) = traced_run(300);
    let busy_windows = series
        .lines()
        .skip(1)
        .filter(|row| {
            let ops: u64 = row.split(',').nth(2).unwrap().parse().unwrap();
            ops > 0
        })
        .count();
    assert!(
        busy_windows >= 2,
        "expected >=2 windows with completions, got {busy_windows}:\n{series}"
    );
}

#[test]
fn disabled_trace_adds_no_events_and_changes_no_results() {
    // Same workload, one traced world and one plain one: the trace must not
    // perturb the simulation, and the disabled handle must never fire.
    let (_, emitted, _) = traced_run(25);
    assert!(emitted > 0);

    let plain = Trace::disabled();
    assert!(!plain.is_enabled());
    assert!(plain.with_bus(|b| b.events_emitted()).is_none());

    let run = |trace: Trace| {
        let world = World::new_traced(
            EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
                Scheme::era_ce_cd(3, 2),
            ),
            trace,
        );
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..25)
            .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
            .collect();
        run_workload(&world, &mut sim, vec![writes]);
        let m = world.metrics.borrow();
        (m.ops(), m.bytes_written, m.elapsed())
    };
    let traced = run(Trace::from_bus(TraceBus::new()));
    let untraced = run(Trace::disabled());
    assert_eq!(traced, untraced, "tracing must not perturb the simulation");
}
