//! End-to-end TraceBus guarantees: a traced run emits the full event
//! vocabulary with virtual timestamps, two identical runs produce
//! byte-identical trace text, and a disabled trace stays invisible.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, SimDuration, Trace, TraceBus};

/// Runs the canonical Era-CE-CD write/kill/read workload with a JSONL sink
/// attached and returns (trace text, events emitted, series CSV).
fn traced_run(ops: usize) -> (String, u64, String) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    bus.enable_series(SimDuration::from_millis(10));
    let trace = Trace::from_bus(bus);

    let world = World::new_traced(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            Scheme::era_ce_cd(3, 2),
        ),
        trace.clone(),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    world.cluster.kill_server(1);
    world.reset_metrics();
    let reads: Vec<Op> = (0..ops).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(&world, &mut sim, vec![reads]);
    assert_eq!(world.metrics.borrow().errors, 0);

    let text = sink.borrow().contents().to_string();
    let emitted = trace
        .with_bus(|bus| bus.events_emitted())
        .expect("trace is enabled");
    let series = trace
        .with_bus(|bus| bus.series().expect("series enabled").to_csv())
        .expect("trace is enabled");
    (text, emitted, series)
}

#[test]
fn traced_run_emits_full_event_vocabulary() {
    let (text, emitted, _) = traced_run(50);
    assert!(emitted > 0);
    // One schema-version header line precedes the events.
    assert_eq!(text.lines().count() as u64, emitted + 1);
    assert!(
        text.starts_with("{\"schema\":\"eckv.trace\",\"version\":1}\n"),
        "missing schema header: {}",
        text.lines().next().unwrap_or_default()
    );
    // Degraded reads past the killed server force decodes; writes encode.
    for needle in [
        "\"event\":\"op_admitted\"",
        "\"event\":\"op_completed\"",
        "\"event\":\"shard_send\"",
        "\"event\":\"shard_recv\"",
        "\"event\":\"nic_queue_enter\"",
        "\"event\":\"nic_queue_exit\"",
        "\"event\":\"encode_start\"",
        "\"event\":\"encode_end\"",
        "\"event\":\"decode_start\"",
        "\"event\":\"decode_end\"",
        "\"event\":\"failure_detected\"",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
    // Every event line carries a virtual timestamp and a sequence number.
    for line in text.lines().skip(1).take(100) {
        assert!(line.starts_with("{\"at_ns\":"), "malformed line: {line}");
        assert!(line.contains("\"seq\":"), "malformed line: {line}");
    }
}

/// Runs the same write/kill/read workload with causal spans enabled and
/// returns (trace text, --explain-tail report, Perfetto JSON, per-op
/// (attributed ns, wall ns) pairs).
fn spanned_run(ops: usize) -> (String, String, String, Vec<(u64, u64)>) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    bus.enable_spans(16);
    let trace = Trace::from_bus(bus);

    let world = World::new_traced(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            Scheme::era_ce_cd(3, 2),
        ),
        trace.clone(),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    world.cluster.kill_server(1);
    world.reset_metrics();
    let reads: Vec<Op> = (0..ops).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(&world, &mut sim, vec![reads]);
    assert_eq!(world.metrics.borrow().errors, 0);

    let text = sink.borrow().contents().to_string();
    let (explain, perfetto, per_op) = trace
        .with_bus(|bus| {
            let spans = bus.spans().expect("spans enabled");
            let per_op: Vec<(u64, u64)> = spans
                .attributions()
                .iter()
                .map(|a| (a.attributed_ns(), a.latency.as_nanos()))
                .collect();
            (spans.explain_tail(), spans.perfetto_json(8), per_op)
        })
        .expect("trace is enabled");
    (text, explain, perfetto, per_op)
}

#[test]
fn spans_attribute_nearly_all_tail_wall_time() {
    let (_, explain, perfetto, per_op) = spanned_run(120);
    assert!(
        explain.contains("critical-path tail attribution"),
        "{explain}"
    );
    assert!(perfetto.contains("\"traceEvents\""));
    assert!(perfetto.contains("\"ph\":\"X\""));

    // Every op in the p95+ tail cohort must have >=95% of its wall time
    // attributed to named phases (the acceptance bar for --explain-tail).
    assert!(!per_op.is_empty());
    let mut lats: Vec<u64> = per_op.iter().map(|&(_, wall)| wall).collect();
    lats.sort_unstable();
    let p95 = lats[lats.len().saturating_sub(1).min(lats.len() * 95 / 100)];
    let mut tail_ops = 0usize;
    for &(attributed, wall) in &per_op {
        if wall < p95 || wall == 0 {
            continue;
        }
        tail_ops += 1;
        assert!(
            attributed * 100 >= wall * 95,
            "tail op only {attributed} of {wall} ns attributed"
        );
    }
    assert!(tail_ops > 0, "no tail-cohort ops found");
}

#[test]
fn span_reports_are_deterministic_across_runs() {
    let (text_a, explain_a, perfetto_a, _) = spanned_run(60);
    let (text_b, explain_b, perfetto_b, _) = spanned_run(60);
    assert_eq!(explain_a, explain_b, "--explain-tail must be reproducible");
    assert_eq!(
        perfetto_a, perfetto_b,
        "Perfetto export must be reproducible"
    );
    assert_eq!(text_a, text_b);
}

#[test]
fn spans_leave_event_trace_byte_identical() {
    // Enabling spans must not add, drop, or reorder any trace event. The
    // series aggregator in traced_run never writes to sinks, so the two
    // sink texts must match byte for byte.
    let (plain, _, _) = traced_run(40);
    let (spanned, _, _, _) = spanned_run(40);
    assert_eq!(plain, spanned);
}

#[test]
fn identical_runs_produce_byte_identical_traces() {
    let (a, emitted_a, series_a) = traced_run(40);
    let (b, emitted_b, series_b) = traced_run(40);
    assert_eq!(emitted_a, emitted_b);
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
    assert_eq!(series_a, series_b);
}

#[test]
fn series_covers_multiple_windows_with_nonzero_throughput() {
    let (_, _, series) = traced_run(300);
    let busy_windows = series
        .lines()
        .skip(1)
        .filter(|row| {
            let ops: u64 = row.split(',').nth(2).unwrap().parse().unwrap();
            ops > 0
        })
        .count();
    assert!(
        busy_windows >= 2,
        "expected >=2 windows with completions, got {busy_windows}:\n{series}"
    );
}

#[test]
fn disabled_trace_adds_no_events_and_changes_no_results() {
    // Same workload, one traced world and one plain one: the trace must not
    // perturb the simulation, and the disabled handle must never fire.
    let (_, emitted, _) = traced_run(25);
    assert!(emitted > 0);

    let plain = Trace::disabled();
    assert!(!plain.is_enabled());
    assert!(plain.with_bus(|b| b.events_emitted()).is_none());

    let run = |trace: Trace| {
        let world = World::new_traced(
            EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
                Scheme::era_ce_cd(3, 2),
            ),
            trace,
        );
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..25)
            .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
            .collect();
        run_workload(&world, &mut sim, vec![writes]);
        let m = world.metrics.borrow();
        (m.ops(), m.bytes_written, m.elapsed())
    };
    let traced = run(Trace::from_bus(TraceBus::new()));
    let untraced = run(Trace::disabled());
    assert_eq!(traced, untraced, "tracing must not perturb the simulation");
}
