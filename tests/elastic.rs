//! Elastic membership end to end: live scale-out and scale-in over the
//! vshard placement layer, with data movement driven through the online
//! repair engine, plus the clean-failure contract when an over-eager
//! drain leaves fewer members than the scheme needs.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

const KEYS: usize = 60;

fn write_keys(world: &Rc<World>, sim: &mut Simulation) {
    let writes: Vec<Op> = (0..KEYS)
        .map(|i| Op::set_synthetic(format!("e{i:02}"), ((i % 8) as u64 + 1) * 1024, i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0, "load must be clean");
}

fn read_keys(world: &Rc<World>, sim: &mut Simulation) {
    world.reset_metrics();
    let reads: Vec<Op> = (0..KEYS).map(|i| Op::get(format!("e{i:02}"))).collect();
    run_workload(world, sim, vec![reads]);
}

#[test]
fn join_migrates_data_and_full_tolerance_covers_the_new_server() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1).max_servers(8),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);

    let id = join_server(&world, &mut sim).expect("a provisioned spare exists");
    assert_eq!(id, 5);
    sim.run();

    assert_eq!(world.cluster.member_count(), 6);
    assert!(!world.repair_active(), "migration queue must drain");
    let m = world.metrics.borrow();
    assert!(m.vshards_moved > 0, "a join must steal vshards");
    assert!(m.migrated_bytes > 0, "stolen vshards must carry data");
    drop(m);
    let report = world.last_repair_report().expect("migration reports");
    assert!(report.keys_repaired > 0);
    assert_eq!(report.keys_lost, 0, "a healthy join loses nothing");
    // A 1x copy per moved chunk: migration reads no more than it writes
    // (reconstruction would read k times as much).
    assert_eq!(report.bytes_read, report.bytes_written);
    assert!(
        world.cluster.servers[5].borrow().store().stats().items > 0,
        "the joiner must hold migrated chunks"
    );

    // The moved chunks are real redundancy: killing the joiner must cost
    // nothing (RS(3,2) tolerates it), and so must killing any old member.
    world.cluster.kill_server(5);
    world.cluster.kill_server(0);
    read_keys(&world, &mut sim);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0, "reads must survive losing the joiner + one");
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn drain_evacuates_every_chunk_before_the_server_leaves() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 6, 1),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);

    drain_server(&world, &mut sim, 2);
    sim.run();

    assert_eq!(world.cluster.member_count(), 5);
    assert!(!world.cluster.is_member(2));
    assert!(!world.repair_active());
    let report = world.last_repair_report().expect("migration reports");
    assert_eq!(report.keys_lost, 0, "a healthy drain loses nothing");

    // Evacuation proof: power the drained server off entirely; every
    // read must still succeed without even a degraded decode.
    world.cluster.kill_server(2);
    read_keys(&world, &mut sim);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0, "no read may depend on the drained server");
    assert_eq!(m.integrity_errors, 0);
    assert_eq!(
        m.get_degraded_count, 0,
        "evacuation must be complete, not patched over by decodes"
    );
}

#[test]
fn draining_below_the_scheme_width_fails_ops_cleanly() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);

    // 4 members cannot host 5 chunks: placement becomes an error...
    drain_server(&world, &mut sim, 1);
    sim.run();
    assert_eq!(
        world.cluster.targets_for(b"e00", 5),
        Err(PlacementError {
            needed: 5,
            available: 4,
        })
    );

    // ...and every operation surfaces it as a clean failure, not a panic.
    world.reset_metrics();
    run_workload(
        &world,
        &mut sim,
        vec![vec![
            Op::set_synthetic("post-drain", 2048, 9),
            Op::get("e00"),
        ]],
    );
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 2, "both ops must fail");
    assert_eq!(m.set_count, 1);
    assert_eq!(m.get_count, 1);
}

#[test]
fn back_to_back_joins_merge_into_one_migration() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1).max_servers(7),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);

    assert_eq!(join_server(&world, &mut sim), Some(5));
    // The second change lands while the first migration is still
    // draining: its tasks extend the same queue.
    assert_eq!(join_server(&world, &mut sim), Some(6));
    assert_eq!(join_server(&world, &mut sim), None, "no spares left");
    sim.run();

    assert_eq!(world.cluster.member_count(), 7);
    assert!(!world.repair_active());
    assert_eq!(
        world.last_repair_report().expect("migration ran").keys_lost,
        0
    );
    read_keys(&world, &mut sim);
    assert_eq!(world.metrics.borrow().errors, 0);
}

#[test]
#[should_panic(expected = "cannot reconfigure membership during an active rebuild")]
fn membership_changes_are_rejected_mid_rebuild() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1).max_servers(6),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);
    world.cluster.kill_server(1);
    start_repair(&world, &mut sim, 1);
    join_server(&world, &mut sim);
}

#[test]
fn membership_changes_emit_the_migration_trace_events() {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1).max_servers(6),
            Scheme::era_ce_cd(3, 2),
        ),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    write_keys(&world, &mut sim);

    join_server(&world, &mut sim).expect("spare exists");
    sim.run();

    let trace = sink.borrow().contents().to_owned();
    let count = |needle: &str| trace.matches(needle).count();
    assert_eq!(
        count("\"event\":\"vshard_reassigned\"") as u64,
        world.metrics.borrow().vshards_moved,
        "one event per reassigned vshard"
    );
    assert_eq!(count("\"event\":\"migration_started\""), 1);
    assert_eq!(count("\"event\":\"migration_done\""), 1);
    assert!(
        count("\"event\":\"repair_shard\"") > 0,
        "each moved chunk lands through the repair write path"
    );
    assert_eq!(
        count("\"event\":\"repair_done\""),
        0,
        "a migration must finish as migration_done, not repair_done"
    );
}
