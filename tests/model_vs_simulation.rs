//! The analytic model (paper Equations 1-8) against the simulator in
//! contention-free single-client scenarios: the simulator should land
//! between the naive and ideal closed forms, and agree on orderings.

use eckv::core::model::LatencyModel;
use eckv::prelude::*;
use eckv::simnet::ComputeModel;

fn measured_set_us(scheme: Scheme, size: u64, window: usize) -> f64 {
    let world = World::new(
        EngineConfig::new(ClusterConfig::new(ClusterProfile::RiQdr, 5, 1), scheme).window(window),
    );
    let mut sim = Simulation::new();
    // A single operation: no pipelining, directly comparable to the
    // per-operation closed forms.
    eckv::core::driver::run_workload(
        &world,
        &mut sim,
        vec![vec![Op::set_synthetic("probe", size, 1)]],
    );
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    m.set_latency.mean().as_micros_f64()
}

fn model() -> LatencyModel {
    LatencyModel::new(
        ClusterProfile::RiQdr.net_config(TransportKind::Rdma),
        ComputeModel::WESTMERE,
    )
}

#[test]
fn sync_rep_set_tracks_equation_2() {
    let m = model();
    for size in [4u64 << 10, 256 << 10, 1 << 20] {
        let sim_us = measured_set_us(Scheme::SyncRep { replicas: 3 }, size, 1);
        let eq2_us = m.rep_set_sync(3, size).as_micros_f64();
        // The simulator adds server processing and acks the model omits,
        // so it must be >= the one-way closed form but within ~3x.
        assert!(
            sim_us >= eq2_us * 0.9 && sim_us <= eq2_us * 3.0,
            "size={size}: sim {sim_us:.1}us vs Eq2 {eq2_us:.1}us"
        );
    }
}

#[test]
fn era_set_lands_between_naive_and_server_processing_bound() {
    let m = model();
    for size in [64u64 << 10, 1 << 20] {
        let sim_us = measured_set_us(Scheme::era_ce_cd(3, 2), size, 1);
        let ideal_us = m.era_set_ideal(3, 2, size).as_micros_f64();
        let naive_us = m.era_set(3, 2, size).as_micros_f64();
        assert!(
            sim_us >= ideal_us * 0.9,
            "size={size}: sim {sim_us:.1} below ideal {ideal_us:.1}"
        );
        assert!(
            sim_us <= naive_us * 2.0,
            "size={size}: sim {sim_us:.1} way above naive {naive_us:.1}"
        );
    }
}

#[test]
fn simulator_preserves_the_models_scheme_ordering_at_1mb() {
    // At 1 MB, both the model (Eq 7 < Eq 2) and the paper agree the
    // overlapped erasure Set beats synchronous replication.
    let size = 1 << 20;
    let sync = measured_set_us(Scheme::SyncRep { replicas: 3 }, size, 1);
    let era = measured_set_us(Scheme::era_ce_cd(3, 2), size, 16);
    assert!(
        era < sync,
        "era {era:.1}us should beat sync-rep {sync:.1}us at 1MB"
    );
}

#[test]
fn eager_rendezvous_crossover_is_visible() {
    // Equation 1's protocol term: a one-way transfer just above 16 KB pays
    // the rendezvous handshake that one just below does not.
    let cfg = ClusterProfile::RiQdr.net_config(TransportKind::Rdma);
    let below = cfg.one_way(16 << 10);
    let above = cfg.one_way((16 << 10) + 256);
    let jump = above.as_micros_f64() - below.as_micros_f64();
    assert!(jump > 2.0, "crossover jump was only {jump:.2}us");
}

#[test]
fn get_paths_match_equation_ordering() {
    // Equation 4 vs 5: healthy replication and erasure reads are close;
    // both well below the degraded erasure read with decode.
    fn measured_get_us(scheme: Scheme, failures: &[usize]) -> f64 {
        let world = World::new(EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            scheme,
        ));
        let mut sim = Simulation::new();
        eckv::core::driver::run_workload(
            &world,
            &mut sim,
            vec![vec![Op::set_synthetic("probe", 1 << 20, 1)]],
        );
        for &f in failures {
            world.cluster.kill_server(f);
        }
        world.reset_metrics();
        eckv::core::driver::run_workload(&world, &mut sim, vec![vec![Op::get("probe")]]);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_latency.mean().as_micros_f64()
    }
    let rep = measured_get_us(Scheme::AsyncRep { replicas: 3 }, &[]);
    let era = measured_get_us(Scheme::era_ce_cd(3, 2), &[]);
    let era_degraded = measured_get_us(Scheme::era_ce_cd(3, 2), &[1, 3]);
    assert!(
        (0.5..=2.0).contains(&(era / rep)),
        "healthy era {era:.1} vs rep {rep:.1}"
    );
    assert!(
        era_degraded > era,
        "degraded {era_degraded:.1} must exceed healthy {era:.1}"
    );
}
