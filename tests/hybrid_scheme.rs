//! The hybrid replication/erasure scheme (the paper's future work).

use eckv::prelude::*;

const THRESHOLD: u64 = 16 << 10;

fn hybrid_world() -> std::rc::Rc<World> {
    World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::hybrid(THRESHOLD, 3, 2),
    ))
}

#[test]
fn small_and_large_values_roundtrip() {
    let world = hybrid_world();
    let mut sim = Simulation::new();
    let small: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let large: Vec<u8> = (0..100_000u32).map(|i| (i % 249) as u8).collect();
    let writes = vec![
        Op::set_inline("small", small),
        Op::set_inline("large", large),
    ];
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    world.reset_metrics();
    eckv::core::driver::run_workload(
        &world,
        &mut sim,
        vec![vec![Op::get("small"), Op::get("large")]],
    );
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn small_values_are_replicated_large_are_chunked() {
    let world = hybrid_world();
    let mut sim = Simulation::new();
    let writes = vec![
        Op::set_synthetic("tiny", 1 << 10, 1),
        Op::set_synthetic("big", 1 << 20, 2),
    ];
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    // The replicated key exists verbatim on its first three placement
    // servers; the chunked key exists only as ".sN" shards.
    let tiny_targets = world
        .cluster
        .ring
        .servers_for(b"tiny", 3)
        .expect("3 fit on 5");
    for &s in &tiny_targets {
        assert!(
            world.cluster.servers[s].borrow().store().contains("tiny"),
            "replica missing on server {s}"
        );
    }
    let big_targets = world
        .cluster
        .ring
        .servers_for(b"big", 5)
        .expect("5 fit on 5");
    assert!(!world.cluster.servers[big_targets[0]]
        .borrow()
        .store()
        .contains("big"));
    for (i, &s) in big_targets.iter().enumerate() {
        assert!(
            world.cluster.servers[s]
                .borrow()
                .store()
                .contains(&format!("big.s{i}")),
            "chunk {i} missing on server {s}"
        );
    }
}

#[test]
fn hybrid_survives_two_failures_for_both_classes() {
    for (a, b) in [(0usize, 1usize), (1, 3), (2, 4)] {
        let world = hybrid_world();
        let mut sim = Simulation::new();
        let mut writes = Vec::new();
        for i in 0..8 {
            writes.push(Op::set_synthetic(format!("s{i}"), 4 << 10, i));
            writes.push(Op::set_synthetic(format!("l{i}"), 256 << 10, 100 + i));
        }
        eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
        world.cluster.kill_server(a);
        world.cluster.kill_server(b);
        world.reset_metrics();
        let mut reads = Vec::new();
        for i in 0..8 {
            reads.push(Op::get(format!("s{i}")));
            reads.push(Op::get(format!("l{i}")));
        }
        eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0, "failures ({a},{b})");
        assert_eq!(m.integrity_errors, 0);
    }
}

#[test]
fn hybrid_memory_sits_between_rep_and_era() {
    fn used(scheme: Scheme, len: u64) -> u64 {
        let world = World::new(EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            scheme,
        ));
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..40)
            .map(|i| Op::set_synthetic(format!("k{i}"), len, i))
            .collect();
        eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
        world.memory_report().used_bytes
    }
    // Large values: hybrid behaves like erasure.
    let rep = used(Scheme::AsyncRep { replicas: 3 }, 256 << 10);
    let era = used(Scheme::era_ce_cd(3, 2), 256 << 10);
    let hyb = used(Scheme::hybrid(THRESHOLD, 3, 2), 256 << 10);
    assert!(hyb < rep);
    assert!((hyb as f64 - era as f64).abs() / (era as f64) < 0.1);
    // Small values: hybrid behaves like replication.
    let rep_s = used(Scheme::AsyncRep { replicas: 3 }, 4 << 10);
    let hyb_s = used(Scheme::hybrid(THRESHOLD, 3, 2), 4 << 10);
    assert!((hyb_s as f64 - rep_s as f64).abs() / (rep_s as f64) < 0.1);
}

#[test]
fn hybrid_repair_restores_both_classes() {
    let world = hybrid_world();
    let mut sim = Simulation::new();
    let mut writes = Vec::new();
    for i in 0..10 {
        writes.push(Op::set_synthetic(format!("s{i}"), 4 << 10, i));
        writes.push(Op::set_synthetic(format!("l{i}"), 256 << 10, 100 + i));
    }
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    world.cluster.kill_server(1);
    let report = eckv::core::repair_server(&world, &mut sim, 1);
    assert_eq!(report.keys_lost, 0);

    // After repair, two *different* failures must still be tolerated.
    world.cluster.kill_server(0);
    world.cluster.kill_server(2);
    world.reset_metrics();
    let mut reads = Vec::new();
    for i in 0..10 {
        reads.push(Op::get(format!("s{i}")));
        reads.push(Op::get(format!("l{i}")));
    }
    eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn scheme_accessors_for_hybrid() {
    let s = Scheme::hybrid(16 << 10, 3, 2);
    assert_eq!(s.fault_tolerance(), 2);
    assert_eq!(s.servers_per_key(), 5);
    assert_eq!(s.storage_factor_for(1 << 10), 3.0);
    assert!((s.storage_factor_for(1 << 20) - 5.0 / 3.0).abs() < 1e-9);
    assert!(s.label().contains("Hybrid"));
    assert!(s.hybrid_params().is_some());
    assert!(s.erasure_params().is_some());
}
