// The proptest suites need the external `proptest` crate, which cannot be
// fetched in offline builds. They are gated behind the off-by-default
// `extern-dev-deps` cargo feature; see the workspace Cargo.toml to re-enable.
#![cfg(feature = "extern-dev-deps")]
//! Property tests for vshard rebalance quality:
//!
//! 1. at fixed membership the vshard indirection composes to exactly the
//!    ring lookup it replaced, for arbitrary keys and group widths;
//! 2. one join to an N-member map reassigns at most ~2/(N+1) of the
//!    vshards, every move lands on the joiner, and only primary slots
//!    move;
//! 3. after ANY join/drain sequence, no vshard group ever names a
//!    drained (or never-joined) server, and every group stays a
//!    permutation of the active membership.

use eckv::store::{HashRing, VShardMap};
use proptest::prelude::*;

/// One membership step chosen by the driver value: high bit picks
/// join/drain, the rest picks the drain victim.
fn apply_step(map: &mut VShardMap, next_id: &mut usize, step: u64) {
    let members = map.members();
    // Drain only while more than one member remains, join only while the
    // id space is sane; biased 50/50 otherwise.
    if step % 2 == 0 || members.len() <= 1 {
        map.add_server(*next_id);
        *next_id += 1;
    } else {
        let victim = members[(step / 2) as usize % members.len()];
        map.drain_server(victim);
    }
}

fn assert_groups_are_member_permutations(map: &VShardMap) {
    let members = map.members();
    for v in 0..map.vshards() {
        let mut g = map.group(v).to_vec();
        g.sort_unstable();
        assert_eq!(
            g, members,
            "vshard {v} group must be a permutation of the active members"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fixed_membership_matches_the_ring(
        servers in 2usize..10,
        vnodes_pow in 4u32..8,
        keys in proptest::collection::vec("[a-z0-9:._-]{1,32}", 1..40),
    ) {
        let vnodes = 1usize << vnodes_pow;
        let ring = HashRing::new(servers, vnodes);
        let map = VShardMap::from_ring(&ring);
        for key in &keys {
            for n in 1..=servers {
                prop_assert_eq!(
                    map.group_for(key.as_bytes(), n),
                    ring.servers_for(key.as_bytes(), n),
                    "key {:?} n {}", key, n
                );
            }
        }
    }

    #[test]
    fn one_join_reassigns_a_bounded_fraction(
        servers in 2usize..10,
        vnodes_pow in 4u32..8,
    ) {
        let vnodes = 1usize << vnodes_pow;
        let ring = HashRing::new(servers, vnodes);
        let mut map = VShardMap::from_ring(&ring);
        let moves = map.add_server(servers);
        prop_assert!(!moves.is_empty(), "a joiner must take some load");
        // The joiner claims `vnodes` of the `servers * vnodes` arcs:
        // at most 1/(N) of the vshards move, comfortably within the
        // 2/(N+1) budget the paper-style rebalance bound allows.
        prop_assert!(
            moves.len() * (servers + 1) <= 2 * map.vshards(),
            "{} moves of {} vshards breaks the 2/(N+1) bound",
            moves.len(),
            map.vshards()
        );
        for m in &moves {
            prop_assert_eq!(m.slot, 0, "a join steals only primary slots");
            prop_assert_eq!(m.to, servers, "every move lands on the joiner");
        }
        assert_groups_are_member_permutations(&map);
    }

    #[test]
    fn churn_never_maps_a_vshard_to_a_dead_server(
        servers in 2usize..8,
        vnodes_pow in 4u32..7,
        steps in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let vnodes = 1usize << vnodes_pow;
        let ring = HashRing::new(servers, vnodes);
        let mut map = VShardMap::from_ring(&ring);
        let mut next_id = servers;
        let mut epoch = map.epoch();
        for &step in &steps {
            apply_step(&mut map, &mut next_id, step);
            prop_assert!(map.epoch() > epoch, "every change must bump the epoch");
            epoch = map.epoch();
            // The invariant: groups only ever name active members, and
            // cover all of them.
            assert_groups_are_member_permutations(&map);
        }
    }
}
