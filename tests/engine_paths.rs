//! White-box checks of the per-scheme data paths: where chunks and
//! replicas physically land, what each design costs, and how the phase
//! accounting behaves.

use eckv::prelude::*;

fn world_for(scheme: Scheme) -> std::rc::Rc<World> {
    World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        scheme,
    ))
}

fn run_ops(world: &std::rc::Rc<World>, sim: &mut Simulation, ops: Vec<Op>) {
    eckv::core::driver::run_workload(world, sim, vec![ops]);
}

#[test]
fn replication_places_full_copies_on_f_consecutive_servers() {
    let world = world_for(Scheme::AsyncRep { replicas: 3 });
    let mut sim = Simulation::new();
    run_ops(&world, &mut sim, vec![Op::set_synthetic("key-x", 1000, 7)]);
    let targets = world
        .cluster
        .ring
        .servers_for(b"key-x", 3)
        .expect("3 fit on 5");
    for (i, srv) in world.cluster.servers.iter().enumerate() {
        let has = srv.borrow().store().contains("key-x");
        assert_eq!(has, targets.contains(&i), "server {i}");
        if has {
            let p = srv.borrow().store().peek("key-x").unwrap();
            assert_eq!(p.len(), 1000, "replicas are full copies");
        }
    }
}

#[test]
fn erasure_places_one_chunk_per_server_with_shard_sized_payloads() {
    for scheme in [Scheme::era_ce_cd(3, 2), Scheme::era_se_sd(3, 2)] {
        let world = world_for(scheme);
        let mut sim = Simulation::new();
        run_ops(&world, &mut sim, vec![Op::set_synthetic("key-y", 3000, 7)]);
        let targets = world
            .cluster
            .ring
            .servers_for(b"key-y", 5)
            .expect("5 fit on 5");
        for (i, &srv) in targets.iter().enumerate() {
            let store = &world.cluster.servers[srv];
            let chunk = store
                .borrow()
                .store()
                .peek(&format!("key-y.s{i}"))
                .unwrap_or_else(|| panic!("{scheme}: chunk {i} missing on server {srv}"));
            assert_eq!(chunk.len(), 1000, "{scheme}: shard = ceil(3000/3)");
            // No full copy anywhere.
            assert!(!store.borrow().store().contains("key-y"), "{scheme}");
        }
    }
}

#[test]
fn se_designs_charge_no_client_compute_ce_designs_do() {
    for (scheme, expect_compute) in [
        (Scheme::era_ce_cd(3, 2), true),
        (Scheme::era_se_cd(3, 2), false),
        (Scheme::era_se_sd(3, 2), false),
    ] {
        let world = world_for(scheme);
        let mut sim = Simulation::new();
        run_ops(&world, &mut sim, vec![Op::set_synthetic("z", 1 << 20, 1)]);
        let b = world.metrics.borrow().avg_set_breakdown();
        assert_eq!(
            b.compute.as_nanos() > 0,
            expect_compute,
            "{scheme}: compute={}",
            b.compute
        );
    }
}

#[test]
fn healthy_erasure_reads_touch_only_data_chunk_holders() {
    let world = world_for(Scheme::era_ce_cd(3, 2));
    let mut sim = Simulation::new();
    run_ops(&world, &mut sim, vec![Op::set_synthetic("r", 6000, 1)]);
    // Snapshot per-server hit counts, then read.
    let before: Vec<u64> = world
        .cluster
        .servers
        .iter()
        .map(|s| s.borrow().stats().hits)
        .collect();
    world.reset_metrics();
    run_ops(&world, &mut sim, vec![Op::get("r")]);
    let targets = world.cluster.ring.servers_for(b"r", 5).expect("5 fit on 5");
    for (pos, &srv) in targets.iter().enumerate() {
        let delta = world.cluster.servers[srv].borrow().stats().hits - before[srv];
        if pos < 3 {
            assert_eq!(delta, 1, "data chunk holder {pos} must serve one read");
        } else {
            assert_eq!(delta, 0, "parity holder {pos} must stay idle when healthy");
        }
    }
}

#[test]
fn degraded_erasure_reads_pull_parity_instead() {
    let world = world_for(Scheme::era_ce_cd(3, 2));
    let mut sim = Simulation::new();
    run_ops(&world, &mut sim, vec![Op::set_synthetic("d", 6000, 1)]);
    let targets = world.cluster.ring.servers_for(b"d", 5).expect("5 fit on 5");
    // Kill the first data chunk holder.
    world.cluster.kill_server(targets[0]);
    world.reset_metrics();
    run_ops(&world, &mut sim, vec![Op::get("d")]);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    // The first parity holder (position 3) must have served the read.
    let parity_holder = &world.cluster.servers[targets[3]];
    assert_eq!(parity_holder.borrow().stats().hits, 1);
    // And the op paid decode time.
    assert!(m.avg_get_breakdown().compute.as_nanos() > 0);
}

#[test]
fn sync_rep_latency_scales_with_replica_count() {
    fn mean_us(replicas: usize) -> f64 {
        let world = world_for(Scheme::SyncRep { replicas });
        let mut sim = Simulation::new();
        run_ops(
            &world,
            &mut sim,
            (0..50)
                .map(|i| Op::set_synthetic(format!("s{i}"), 64 << 10, i))
                .collect(),
        );
        let v = world.metrics.borrow().set_latency.mean().as_micros_f64();
        v
    }
    let two = mean_us(2);
    let four = mean_us(4);
    let ratio = four / two;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "sequential replication should scale ~linearly: {two} -> {four} ({ratio:.2}x)"
    );
}

#[test]
fn request_phase_counts_one_post_per_subrequest() {
    let world = world_for(Scheme::era_ce_cd(3, 2));
    let mut sim = Simulation::new();
    run_ops(&world, &mut sim, vec![Op::set_synthetic("p", 1024, 1)]);
    let post = world.cluster.net_config().post_overhead;
    let b = world.metrics.borrow().avg_set_breakdown();
    assert_eq!(b.request, post * 5, "5 chunk posts for RS(3,2)");
}

#[test]
fn phase_sums_equal_latency() {
    for scheme in [
        Scheme::AsyncRep { replicas: 3 },
        Scheme::era_ce_cd(3, 2),
        Scheme::era_se_sd(3, 2),
    ] {
        let world = world_for(scheme);
        let mut sim = Simulation::new();
        run_ops(&world, &mut sim, vec![Op::set_synthetic("q", 64 << 10, 1)]);
        let m = world.metrics.borrow();
        let b = m.avg_set_breakdown();
        let latency = m.set_latency.mean();
        assert_eq!(
            b.total().as_nanos(),
            latency.as_nanos(),
            "{scheme}: phases must account for the whole latency"
        );
    }
}

#[test]
fn era_se_set_ships_full_value_once_from_client() {
    // Client -> primary carries D once; CE ships N chunks totalling 1.67 D.
    fn client_tx_bytes(scheme: Scheme) -> u64 {
        let world = world_for(scheme);
        let mut sim = Simulation::new();
        run_ops(&world, &mut sim, vec![Op::set_synthetic("t", 300_000, 1)]);
        let total = world.cluster.net.borrow().bytes_sent();
        total
    }
    let se = client_tx_bytes(Scheme::era_se_cd(3, 2));
    let ce = client_tx_bytes(Scheme::era_ce_cd(3, 2));
    // SE: D (client->primary) + 4 chunks (primary->peers) = D + 1.33 D.
    // CE: 5 chunks from the client = 1.67 D. Total wire bytes differ:
    assert!(
        se > ce,
        "SE moves more total bytes (two hops): {se} vs {ce}"
    );
    let d = 300_000f64;
    assert!((se as f64) > d * 2.2 && (se as f64) < d * 2.5, "se={se}");
    assert!((ce as f64) > d * 1.6 && (ce as f64) < d * 1.9, "ce={ce}");
}
