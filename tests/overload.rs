//! Admission control end to end: past the saturation knee the store
//! sheds instead of queueing without bound (and the admitted tail stays
//! bounded), with admission disabled the machinery is invisible — traces
//! are deterministic and contain no shed events — and when both traffic
//! classes contend, repair is shed strictly before foreground.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

const HOT_KEY: &str = "hot";
const DEPTH: u64 = 48;

/// A thundering-herd deployment: every client GETs one hot 512B key
/// stored Era-SE-SD, so the whole herd funnels through one single-worker
/// aggregator.
fn herd_engine(clients: usize) -> EngineConfig {
    EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, clients).workers(1),
        Scheme::era_se_sd(3, 2),
    )
    .window(2)
    .record_timeline(true)
}

/// Runs the herd and returns `(sheds, admitted p99)`.
fn herd(clients: usize, admission: Option<AdmissionConfig>) -> (u64, SimDuration) {
    let mut cfg = herd_engine(clients);
    if let Some(a) = admission {
        cfg = cfg.admission(a);
    }
    let world = World::new(cfg);
    let mut sim = Simulation::new();
    let mut seed = vec![Vec::new(); clients];
    seed[0] = vec![Op::set_synthetic(HOT_KEY, 512, 7)];
    run_workload(&world, &mut sim, seed);
    world.reset_metrics();
    let streams: Vec<Vec<Op>> = (0..clients)
        .map(|_| (0..40).map(|_| Op::get(HOT_KEY)).collect())
        .collect();
    run_workload(&world, &mut sim, streams);
    let m = world.metrics.borrow();
    let mut ok: Vec<SimDuration> = m
        .timeline
        .as_ref()
        .expect("timeline enabled")
        .iter()
        .filter(|p| p.ok)
        .map(|p| p.latency)
        .collect();
    ok.sort();
    assert!(!ok.is_empty(), "the herd must make progress");
    let idx = ((ok.len() - 1) as f64 * 0.99).round() as usize;
    (m.sheds, ok[idx])
}

#[test]
fn sheds_past_the_knee_keep_the_admitted_tail_bounded() {
    // Below the hot aggregator's capacity nothing sheds; well past it the
    // shed rate is nonzero but admitted operations queue behind at most
    // `DEPTH` others, so their p99 stays within 2x of the pre-knee p99
    // instead of growing linearly with the client count.
    let adm = Some(AdmissionConfig::depth(DEPTH));
    let (pre_sheds, pre_p99) = herd(8, adm);
    let (post_sheds, post_p99) = herd(64, adm);
    assert_eq!(pre_sheds, 0, "below the knee nothing sheds");
    assert!(post_sheds > 0, "past the knee the store must shed");
    assert!(
        post_p99 <= pre_p99 * 2,
        "admitted p99 must stay bounded: {post_p99} vs {pre_p99} pre-knee"
    );

    // The same overload without admission: no sheds, and the tail blows
    // past the capped run's as the queue absorbs the whole herd.
    let (unbounded_sheds, unbounded_p99) = herd(64, None);
    assert_eq!(unbounded_sheds, 0, "no admission, no sheds");
    assert!(
        unbounded_p99 > post_p99,
        "the unbounded tail must be worse: {unbounded_p99} vs {post_p99}"
    );
}

/// One pinned mixed run (writes then reads) with tracing; returns the
/// JSONL trace and the final shed counter.
fn traced_run(admission: Option<AdmissionConfig>, clients: usize) -> (String, u64) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let mut cfg = herd_engine(clients);
    if let Some(a) = admission {
        cfg = cfg.admission(a);
    }
    let world = World::new_traced(cfg, Trace::from_bus(bus));
    let mut sim = Simulation::new();
    let mut seed = vec![Vec::new(); clients];
    seed[0] = vec![Op::set_synthetic(HOT_KEY, 512, 7)];
    run_workload(&world, &mut sim, seed);
    let streams: Vec<Vec<Op>> = (0..clients)
        .map(|_| (0..10).map(|_| Op::get(HOT_KEY)).collect())
        .collect();
    run_workload(&world, &mut sim, streams);
    let sheds = world.metrics.borrow().sheds;
    let trace = sink.borrow().contents().to_string();
    (trace, sheds)
}

#[test]
fn disabled_admission_is_invisible_in_the_trace() {
    // With no AdmissionConfig the bounded-queue machinery must not
    // perturb the simulation: same-seed traces stay byte-identical and
    // contain no shed events. The capped overloaded run is the positive
    // control proving the event names actually appear when shedding.
    let (trace_a, sheds_a) = traced_run(None, 32);
    let (trace_b, _) = traced_run(None, 32);
    assert_eq!(sheds_a, 0);
    assert_eq!(
        trace_a, trace_b,
        "admission-disabled traces must be byte-identical across runs"
    );
    for event in ["\"event\":\"op_shed\"", "\"event\":\"queue_capped\""] {
        assert!(
            !trace_a.contains(event),
            "admission-disabled trace must not contain {event}"
        );
    }

    let (capped, sheds) = traced_run(Some(AdmissionConfig::depth(4)), 32);
    assert!(sheds > 0);
    assert!(capped.contains("\"event\":\"op_shed\""));
    assert!(capped.contains("\"event\":\"queue_capped\""));
}

#[test]
fn repair_is_shed_before_foreground() {
    // A foreground-friendly cap (deep foreground bound, repair bound of
    // one) under a mixed load: the rebuild's fetches land on busy
    // survivors and are refused, while no foreground request ever sheds.
    // Shed repair keys are requeued, so the rebuild still completes once
    // the foreground load drains.
    let clients = 4;
    let world = World::new(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, clients).workers(1),
            Scheme::era_se_sd(3, 2),
        )
        .window(2)
        .repair(RepairConfig::default().window(4))
        .admission(AdmissionConfig::depth(10_000).repair_depth(1)),
    );
    let mut sim = Simulation::new();
    let n = 24;
    let writes: Vec<Op> = (0..n)
        .map(|i| Op::set_synthetic(format!("k{i:02}"), 4 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes, vec![], vec![], vec![]]);
    assert_eq!(world.metrics.borrow().errors, 0, "load must be clean");

    world.reset_metrics();
    world.cluster.kill_server(2);
    start_repair(&world, &mut sim, 2);
    let reads: Vec<Vec<Op>> = (0..clients)
        .map(|_| (0..n).map(|i| Op::get(format!("k{i:02}"))).collect())
        .collect();
    run_workload(&world, &mut sim, reads);

    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0, "foreground reads stay clean during repair");
    assert!(m.sheds_repair > 0, "the strict repair bound must shed");
    assert_eq!(
        m.sheds, m.sheds_repair,
        "every shed must be a repair shed — foreground is never refused"
    );
    drop(m);
    let report = world.last_repair_report().expect("the rebuild must finish");
    assert_eq!(report.keys_lost, 0, "shed keys are requeued, not lost");
}
