//! Failure discovery and fail-over: clients do not know about failures
//! until an operation trips over one; the engine retries against the
//! updated view transparently.

use eckv::prelude::*;

fn loaded(scheme: Scheme) -> (std::rc::Rc<World>, Simulation) {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        scheme,
    ));
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..40)
        .map(|i| Op::set_synthetic(format!("k{i}"), 32 << 10, i))
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0);
    (world, sim)
}

#[test]
fn first_reads_after_a_failure_discover_and_retry() {
    // Replication and SD reads go through a single server and fail over by
    // retrying the whole op; CD reads top up from parity *within* the op,
    // so they recover without a driver-level retry.
    for (scheme, retries_expected) in [
        (Scheme::AsyncRep { replicas: 3 }, true),
        (Scheme::era_ce_cd(3, 2), false),
        (Scheme::era_se_sd(3, 2), true),
    ] {
        let (world, mut sim) = loaded(scheme);
        world.cluster.kill_server(2);
        world.reset_metrics();
        let reads: Vec<Op> = (0..40).map(|i| Op::get(format!("k{i}"))).collect();
        eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0, "{scheme}: fail-over must hide the failure");
        assert_eq!(m.integrity_errors, 0, "{scheme}");
        if retries_expected {
            assert!(
                m.retries > 0,
                "{scheme}: at least one op must have tripped over the dead server"
            );
            // Discovery happens once: far fewer retries than operations
            // that touch the dead server.
            assert!(m.retries < 40, "{scheme}: retries should not repeat per op");
        } else {
            assert_eq!(
                m.retries, 0,
                "{scheme}: CD top-up should make driver retries unnecessary"
            );
        }
    }
}

#[test]
fn discovery_penalty_is_paid_once_per_client() {
    // Two reads of the same dead-primary key: the first pays the transport
    // failure-detection delay, the second routes around immediately.
    let (world, mut sim) = loaded(Scheme::AsyncRep { replicas: 3 });
    // Find a key whose primary we then kill.
    let key = (0..40)
        .map(|i| format!("k{i}"))
        .find(|k| world.cluster.ring.primary_for(k.as_bytes()) == 3)
        .expect("some key lands on server 3");
    world.cluster.kill_server(3);

    // Recorded latency covers only the final (successful) attempt; the
    // discovery cost shows up in wall time (admission to completion).
    world.reset_metrics();
    eckv::core::driver::run_workload(&world, &mut sim, vec![vec![Op::get(key.clone())]]);
    let first_wall = world.metrics.borrow().elapsed();

    world.reset_metrics();
    eckv::core::driver::run_workload(&world, &mut sim, vec![vec![Op::get(key)]]);
    let second_wall = world.metrics.borrow().elapsed();

    let detect = world.cluster.net_config().failure_detect;
    assert!(
        first_wall >= detect,
        "first read ({first_wall}) must pay the detection delay ({detect})"
    );
    assert!(
        second_wall < first_wall,
        "second read ({second_wall}) must be faster than discovery ({first_wall})"
    );
}

#[test]
fn views_are_per_client() {
    // Client 0 discovers the failure; client 1 still pays its own
    // discovery on its first affected read.
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 2),
        Scheme::AsyncRep { replicas: 3 },
    ));
    let mut sim = Simulation::new();
    eckv::core::driver::run_workload(
        &world,
        &mut sim,
        vec![vec![Op::set_synthetic("shared", 8 << 10, 1)], vec![]],
    );
    let primary = world.cluster.ring.primary_for(b"shared");
    world.cluster.kill_server(primary);

    world.reset_metrics();
    eckv::core::driver::run_workload(&world, &mut sim, vec![vec![Op::get("shared")], vec![]]);
    assert_eq!(world.metrics.borrow().retries, 1, "client 0 discovers");

    world.reset_metrics();
    eckv::core::driver::run_workload(&world, &mut sim, vec![vec![], vec![Op::get("shared")]]);
    assert_eq!(
        world.metrics.borrow().retries,
        1,
        "client 1 discovers separately"
    );

    world.reset_metrics();
    eckv::core::driver::run_workload(&world, &mut sim, vec![vec![], vec![Op::get("shared")]]);
    assert_eq!(world.metrics.borrow().retries, 0, "then remembers");
}

#[test]
fn degraded_writes_succeed_with_reduced_redundancy() {
    // With one chunk holder down, an erasure Set still lands k+m-1 >= k
    // chunks and succeeds; the data must then be readable.
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    world.cluster.kill_server(1);
    let writes: Vec<Op> = (0..20)
        .map(|i| Op::set_synthetic(format!("w{i}"), 16 << 10, i))
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(
        world.metrics.borrow().errors,
        0,
        "writes must degrade gracefully past one failure"
    );

    world.reset_metrics();
    let reads: Vec<Op> = (0..20).map(|i| Op::get(format!("w{i}"))).collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn writes_beyond_budget_fail_cleanly() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::era_ce_cd(3, 2),
    ));
    let mut sim = Simulation::new();
    for s in [0, 1, 2] {
        world.cluster.kill_server(s);
    }
    eckv::core::driver::run_workload(
        &world,
        &mut sim,
        vec![vec![Op::set_synthetic("doomed", 4 << 10, 1)]],
    );
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 1, "fewer than k reachable holders cannot store");
}

#[test]
fn replicated_write_with_one_dead_target_still_succeeds() {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::AsyncRep { replicas: 3 },
    ));
    let mut sim = Simulation::new();
    world.cluster.kill_server(0);
    world.cluster.kill_server(1);
    let writes: Vec<Op> = (0..20)
        .map(|i| Op::set_synthetic(format!("r{i}"), 4 << 10, i))
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0);
    world.reset_metrics();
    let reads: Vec<Op> = (0..20).map(|i| Op::get(format!("r{i}"))).collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
    assert_eq!(world.metrics.borrow().errors, 0);
}
