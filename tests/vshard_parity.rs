//! Golden-trace parity for the vshard placement layer: at fixed topology
//! the key→vshard→server-group indirection must compose to exactly the
//! key→ring mapping it replaced, so a pinned seed/config scenario —
//! erasure with an online rebuild, plain replication, and the hybrid
//! scheme — must keep producing the byte-identical JSONL trace captured
//! before the refactor.
//!
//! Regenerate the golden file (only after an *intentional* trace change)
//! with:
//!
//! ```text
//! ECKV_BLESS_GOLDEN=1 cargo test --test vshard_parity
//! ```

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

/// Keys written (and read back) per scheme leg.
const KEYS: usize = 16;
/// The server killed and rebuilt online in the erasure leg.
const DEAD: usize = 1;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/fixed_topology.jsonl")
}

/// Pinned value size of key `i`: 1..8 KiB, crossing the hybrid threshold
/// both ways.
fn len_of(i: usize) -> u64 {
    ((i % 8) as u64 + 1) * 1024
}

/// The pinned fixed-topology scenario: three scheme legs, each traced
/// end to end. The erasure leg loses a server and rebuilds it online
/// while reads continue, so repair-engine traces are pinned too.
fn scenario() -> String {
    let mut out = String::new();
    let legs: Vec<(&str, Scheme, bool)> = vec![
        ("era-ce-cd", Scheme::era_ce_cd(3, 2), true),
        ("sync-rep", Scheme::SyncRep { replicas: 3 }, false),
        ("hybrid", Scheme::hybrid(4096, 3, 2), false),
    ];
    for (name, scheme, kill_and_repair) in legs {
        let sink = Rc::new(RefCell::new(JsonlSink::new()));
        let mut bus = TraceBus::new();
        bus.add_sink(sink.clone());
        let world = World::new_traced(
            EngineConfig::new(ClusterConfig::new(ClusterProfile::RiQdr, 5, 1), scheme).window(2),
            Trace::from_bus(bus),
        );
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..KEYS)
            .map(|i| Op::set_synthetic(format!("g{i:02}"), len_of(i), i as u64))
            .collect();
        run_workload(&world, &mut sim, vec![writes]);
        assert_eq!(
            world.metrics.borrow().errors,
            0,
            "{name}: load must be clean"
        );
        if kill_and_repair {
            world.cluster.kill_server(DEAD);
            start_repair(&world, &mut sim, DEAD);
        }
        let reads: Vec<Op> = (0..KEYS).map(|i| Op::get(format!("g{i:02}"))).collect();
        enqueue_workload(&world, &mut sim, vec![reads]);
        sim.run();
        out.push_str("## ");
        out.push_str(name);
        out.push('\n');
        out.push_str(sink.borrow().contents());
    }
    out
}

#[test]
fn fixed_topology_traces_match_the_pre_vshard_golden() {
    let got = scenario();
    let path = golden_path();
    if std::env::var_os("ECKV_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing; bless with ECKV_BLESS_GOLDEN=1");
    assert!(
        got == want,
        "fixed-topology trace diverged from the pre-vshard golden \
         ({} vs {} bytes); placement at fixed membership must be \
         byte-identical to the direct ring lookup",
        got.len(),
        want.len()
    );
}

#[test]
fn fixed_topology_scenario_is_deterministic() {
    assert_eq!(
        scenario(),
        scenario(),
        "same-seed scenario runs must be byte-identical"
    );
}
