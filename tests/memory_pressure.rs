//! Memory pressure and eviction behaviour across the cluster (the
//! substrate of Figure 10).

use eckv::prelude::*;

fn pressured_world(scheme: Scheme, server_mem: u64) -> std::rc::Rc<World> {
    World::new(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 4)
                .client_nodes(2)
                .server_memory(server_mem),
            scheme,
        )
        .validate(false),
    )
}

fn write_volume(world: &std::rc::Rc<World>, per_client: usize, value_len: u64) {
    let mut sim = Simulation::new();
    let streams: Vec<Vec<Op>> = (0..4)
        .map(|c| {
            (0..per_client)
                .map(|i| Op::set_synthetic(format!("p{c}-{i}"), value_len, (c * 10_000 + i) as u64))
                .collect()
        })
        .collect();
    eckv::core::driver::run_workload(world, &mut sim, streams);
}

#[test]
fn under_capacity_no_evictions() {
    let world = pressured_world(Scheme::AsyncRep { replicas: 3 }, 1 << 30);
    write_volume(&world, 50, 1 << 20); // 200 MB x3 into 5 GB
    let r = world.memory_report();
    assert_eq!(r.evictions, 0);
    assert_eq!(r.evicted_bytes, 0);
    assert!(r.pct_used() > 5.0 && r.pct_used() < 30.0, "{r:?}");
}

#[test]
fn over_capacity_replication_evicts_erasure_does_not() {
    // 4 clients x 120 x 1 MB = 480 MB of data. x3 replication wants
    // ~1.5 GB of the 1 GB aggregate; RS(3,2) wants ~0.9 GB.
    let mem = 200 << 20; // 200 MB per server, 1 GB aggregate
    let rep_world = pressured_world(Scheme::AsyncRep { replicas: 3 }, mem);
    write_volume(&rep_world, 120, 1 << 20);
    let rep = rep_world.memory_report();
    assert!(rep.evictions > 0, "replication must evict: {rep:?}");
    assert!(rep.pct_used() > 85.0, "{rep:?}");

    let era_world = pressured_world(Scheme::era_ce_cd(3, 2), mem);
    write_volume(&era_world, 120, 1 << 20);
    let era = era_world.memory_report();
    assert_eq!(era.evictions, 0, "erasure fits: {era:?}");
    assert!(era.pct_used() < rep.pct_used());
}

#[test]
fn evicted_values_read_as_misses_not_corruption() {
    let world = pressured_world(Scheme::AsyncRep { replicas: 3 }, 64 << 20);
    write_volume(&world, 100, 1 << 20);
    let r = world.memory_report();
    assert!(r.evictions > 0);

    // Read everything back: early keys were evicted -> errors (misses),
    // but never integrity failures.
    let mut sim = Simulation::new();
    world.reset_metrics();
    let reads: Vec<Vec<Op>> = (0..4)
        .map(|c| (0..100).map(|i| Op::get(format!("p{c}-{i}"))).collect())
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, reads);
    let m = world.metrics.borrow();
    assert!(m.errors > 0, "some reads must miss after eviction");
    assert!(m.errors < m.get_count, "recent keys must still hit");
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn aggregate_stats_are_consistent() {
    let world = pressured_world(Scheme::era_ce_cd(3, 2), 1 << 30);
    write_volume(&world, 40, 1 << 20);
    let agg = world.cluster.aggregate_stats();
    // Every set stores k+m = 5 chunks.
    assert_eq!(agg.sets, 4 * 40 * 5);
    assert_eq!(agg.items, 4 * 40 * 5);
    let per_server: Vec<u64> = world
        .cluster
        .servers
        .iter()
        .map(|s| s.borrow().stats().items)
        .collect();
    assert_eq!(per_server.iter().sum::<u64>(), agg.items);
    // Chunk placement touches all five servers roughly evenly.
    for (i, &n) in per_server.iter().enumerate() {
        assert!(n > 0, "server {i} got no chunks: {per_server:?}");
    }
}
