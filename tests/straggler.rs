//! Straggler fault-injection and hedged-read guarantees, end to end:
//! a slow-but-alive server never corrupts or fails reads, hedging routes
//! the tail around it, same-seed degraded runs are byte-identical, and
//! per-op deadlines surface as metrics plus trace events.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

const SLOW_FACTOR: f64 = 8.0;
const JITTER: SimDuration = SimDuration::from_micros(300);

fn engine(hedged: bool) -> EngineConfig {
    let mut cfg = EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
        Scheme::era_ce_cd(3, 2),
    )
    .window(1);
    if hedged {
        cfg = cfg.hedge(HedgeConfig::default());
    }
    cfg
}

/// Loads `ops` keys, degrades server 0, warms the hedge estimator, then
/// runs a measured GET pass. Returns the world for metric inspection.
fn degraded_run(world: &Rc<World>, sim: &mut Simulation, ops: usize) {
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
    let warm: Vec<Op> = (0..ops / 4).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(world, sim, vec![warm]);
    world.reset_metrics();
    let reads: Vec<Op> = (0..ops).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(world, sim, vec![reads]);
}

#[test]
fn hedged_reads_survive_a_straggler_intact() {
    let world = World::new(engine(true));
    let mut sim = Simulation::new();
    degraded_run(&world, &mut sim, 80);
    let m = world.metrics.borrow();
    assert_eq!(m.get_count, 80);
    assert_eq!(m.errors, 0, "slow is not dead: every read must succeed");
    assert_eq!(m.integrity_errors, 0, "hedged reads must never corrupt");
    assert!(m.hedges_fired > 0, "the straggler should trigger hedges");
    assert!(
        m.hedges_won > 0 && m.hedges_won <= m.hedges_fired,
        "fired={} won={}",
        m.hedges_fired,
        m.hedges_won
    );
}

#[test]
fn hedging_improves_the_degraded_tail() {
    let run = |hedged: bool| {
        let world = World::new(engine(hedged));
        let mut sim = Simulation::new();
        degraded_run(&world, &mut sim, 80);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_summary().percentile(99.0)
    };
    let unhedged = run(false);
    let hedged = run(true);
    assert!(
        hedged < unhedged,
        "hedged p99 {hedged} must beat unhedged p99 {unhedged}"
    );
}

#[test]
fn straggler_slows_the_unhedged_tail() {
    let run = |slow: bool| {
        let world = World::new(engine(false));
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..60)
            .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
            .collect();
        run_workload(&world, &mut sim, vec![writes]);
        if slow {
            world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
        }
        world.reset_metrics();
        let reads: Vec<Op> = (0..60).map(|i| Op::get(format!("k{i}"))).collect();
        run_workload(&world, &mut sim, vec![reads]);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_summary().percentile(99.0)
    };
    let healthy = run(false);
    let degraded = run(true);
    assert!(
        degraded > healthy * 2,
        "an 8x straggler should at least double the p99: healthy {healthy}, degraded {degraded}"
    );
}

/// A traced degraded+hedged run; returns the JSONL text.
fn traced_degraded_run(ops: usize) -> String {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(engine(true), Trace::from_bus(bus));
    let mut sim = Simulation::new();
    degraded_run(&world, &mut sim, ops);
    assert_eq!(world.metrics.borrow().errors, 0);
    let text = sink.borrow().contents().to_string();
    text
}

#[test]
fn same_seed_degraded_runs_are_byte_identical() {
    let a = traced_degraded_run(60);
    let b = traced_degraded_run(60);
    assert_eq!(
        a, b,
        "straggler jitter and hedging must stay deterministic under the same seed"
    );
    for needle in [
        "\"event\":\"node_degraded\"",
        "\"event\":\"hedge_fired\"",
        "\"event\":\"hedge_won\"",
    ] {
        assert!(a.contains(needle), "missing {needle}");
    }
}

#[test]
fn deadline_misses_surface_in_metrics_and_trace() {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine(false).deadline(SimDuration::from_nanos(1)),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..10)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    let m = world.metrics.borrow();
    // A 1ns deadline is unmeetable: every op completes but is late.
    assert_eq!(m.errors, 0, "a missed deadline is late, not failed");
    assert_eq!(m.deadline_misses, 10);
    drop(m);
    let text = sink.borrow().contents().to_string();
    assert!(text.contains("\"event\":\"deadline_exceeded\""));
}
