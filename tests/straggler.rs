//! Straggler fault-injection and hedged-read guarantees, end to end:
//! a slow-but-alive server never corrupts or fails reads, hedging routes
//! the tail around it, same-seed degraded runs are byte-identical, and
//! per-op deadlines surface as metrics plus trace events.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

const SLOW_FACTOR: f64 = 8.0;
const JITTER: SimDuration = SimDuration::from_micros(300);

fn engine_with(scheme: Scheme, hedged: bool) -> EngineConfig {
    let mut cfg =
        EngineConfig::new(ClusterConfig::new(ClusterProfile::RiQdr, 5, 1), scheme).window(1);
    if hedged {
        cfg = cfg.hedge(HedgeConfig::default());
    }
    cfg
}

fn engine(hedged: bool) -> EngineConfig {
    engine_with(Scheme::era_ce_cd(3, 2), hedged)
}

/// Loads `ops` keys, degrades server 0, warms the hedge estimator, then
/// runs a measured GET pass. Returns the world for metric inspection.
fn degraded_run(world: &Rc<World>, sim: &mut Simulation, ops: usize) {
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
    let warm: Vec<Op> = (0..ops / 4).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(world, sim, vec![warm]);
    world.reset_metrics();
    let reads: Vec<Op> = (0..ops).map(|i| Op::get(format!("k{i}"))).collect();
    run_workload(world, sim, vec![reads]);
}

#[test]
fn hedged_reads_survive_a_straggler_intact() {
    let world = World::new(engine(true));
    let mut sim = Simulation::new();
    degraded_run(&world, &mut sim, 80);
    let m = world.metrics.borrow();
    assert_eq!(m.get_count, 80);
    assert_eq!(m.errors, 0, "slow is not dead: every read must succeed");
    assert_eq!(m.integrity_errors, 0, "hedged reads must never corrupt");
    assert!(m.hedges_fired > 0, "the straggler should trigger hedges");
    assert!(
        m.hedges_won > 0 && m.hedges_won <= m.hedges_fired,
        "fired={} won={}",
        m.hedges_fired,
        m.hedges_won
    );
}

#[test]
fn hedging_improves_the_degraded_tail() {
    let run = |hedged: bool| {
        let world = World::new(engine(hedged));
        let mut sim = Simulation::new();
        degraded_run(&world, &mut sim, 80);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_summary().percentile(99.0)
    };
    let unhedged = run(false);
    let hedged = run(true);
    assert!(
        hedged < unhedged,
        "hedged p99 {hedged} must beat unhedged p99 {unhedged}"
    );
}

#[test]
fn straggler_slows_the_unhedged_tail() {
    let run = |slow: bool| {
        let world = World::new(engine(false));
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..60)
            .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
            .collect();
        run_workload(&world, &mut sim, vec![writes]);
        if slow {
            world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
        }
        world.reset_metrics();
        let reads: Vec<Op> = (0..60).map(|i| Op::get(format!("k{i}"))).collect();
        run_workload(&world, &mut sim, vec![reads]);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_summary().percentile(99.0)
    };
    let healthy = run(false);
    let degraded = run(true);
    assert!(
        degraded > healthy * 2,
        "an 8x straggler should at least double the p99: healthy {healthy}, degraded {degraded}"
    );
}

/// A traced degraded+hedged run; returns the JSONL text.
fn traced_degraded_run(ops: usize) -> String {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(engine(true), Trace::from_bus(bus));
    let mut sim = Simulation::new();
    degraded_run(&world, &mut sim, ops);
    assert_eq!(world.metrics.borrow().errors, 0);
    let text = sink.borrow().contents().to_string();
    text
}

#[test]
fn same_seed_degraded_runs_are_byte_identical() {
    let a = traced_degraded_run(60);
    let b = traced_degraded_run(60);
    assert_eq!(
        a, b,
        "straggler jitter and hedging must stay deterministic under the same seed"
    );
    for needle in [
        "\"event\":\"node_degraded\"",
        "\"event\":\"hedge_fired\"",
        "\"event\":\"hedge_won\"",
    ] {
        assert!(a.contains(needle), "missing {needle}");
    }
}

/// Like [`degraded_run`] but for Era-SE-SD: reads only the keys whose
/// aggregator (first chunk holder) is NOT the straggler. When the
/// straggler aggregates, the whole op funnels through it by construction
/// (ingest, decode, response) and no gather-side hedge can help; the
/// hedge defends the ops where the slow node is one of the gathered
/// peers.
fn sd_degraded_run(world: &Rc<World>, sim: &mut Simulation, ops: usize) -> usize {
    let writes: Vec<Op> = (0..ops)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
    let keys: Vec<String> = (0..ops)
        .map(|i| format!("k{i}"))
        .filter(|k| world.targets(k)[0] != 0)
        .collect();
    let warm: Vec<Op> = keys[..keys.len() / 4]
        .iter()
        .map(|k| Op::get(k.clone()))
        .collect();
    run_workload(world, sim, vec![warm]);
    world.reset_metrics();
    let reads: Vec<Op> = keys.iter().map(|k| Op::get(k.clone())).collect();
    run_workload(world, sim, vec![reads]);
    keys.len()
}

#[test]
fn sd_aggregation_hedges_around_a_straggler() {
    // Era-SE-SD: the aggregator's gather fan-in runs on the shared fan-out
    // core, so a slow chunk holder is hedged server-side exactly like the
    // client-decode path — and the speculative fetches must be visible in
    // the trace.
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine_with(Scheme::era_se_sd(3, 2), true),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    let reads = sd_degraded_run(&world, &mut sim, 80);
    let m = world.metrics.borrow();
    assert_eq!(m.get_count, reads as u64);
    assert_eq!(m.errors, 0, "slow is not dead: every read must succeed");
    assert_eq!(m.integrity_errors, 0, "hedged SD reads must never corrupt");
    assert!(m.hedges_fired > 0, "the straggler should trigger hedges");
    assert!(
        m.hedges_won > 0 && m.hedges_won <= m.hedges_fired,
        "fired={} won={}",
        m.hedges_fired,
        m.hedges_won
    );
    let text = sink.borrow().contents().to_string();
    for needle in ["\"event\":\"hedge_fired\"", "\"event\":\"hedge_won\""] {
        assert!(text.contains(needle), "missing {needle} on the SD path");
    }
}

#[test]
fn hedging_improves_the_degraded_sd_tail() {
    // An 8x-slowed gather peer must no longer set the Era-SE-SD p99 once
    // the aggregation fan-in hedges.
    let run = |hedged: bool| {
        let world = World::new(engine_with(Scheme::era_se_sd(3, 2), hedged));
        let mut sim = Simulation::new();
        sd_degraded_run(&world, &mut sim, 80);
        let m = world.metrics.borrow();
        assert_eq!(m.errors, 0);
        m.get_summary().percentile(99.0)
    };
    let unhedged = run(false);
    let hedged = run(true);
    assert!(
        hedged < unhedged,
        "hedged SD p99 {hedged} must beat unhedged p99 {unhedged}"
    );
}

/// Loads keys, kills one server, slows a survivor, rebuilds online.
/// Returns `(world, report, trace)`.
fn straggled_repair(hedged: bool) -> (Rc<World>, RepairReport, String) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(engine(hedged), Trace::from_bus(bus));
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..80)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0);
    world.cluster.kill_server(2);
    world.cluster.slow_server(sim.now(), 0, SLOW_FACTOR, JITTER);
    start_repair(&world, &mut sim, 2);
    sim.run();
    let report = world.last_repair_report().expect("repair ran to the end");
    let text = sink.borrow().contents().to_string();
    (world, report, text)
}

#[test]
fn online_repair_hedges_survivor_reads() {
    // The per-key survivor fetches of an online rebuild run on the shared
    // fan-out core: a straggling survivor triggers speculative reads (the
    // repair's own first-chunk samples warm the estimator), the hedges
    // land in the trace, and no key is lost.
    let (world, report, trace) = straggled_repair(true);
    assert!(report.keys_repaired > 0);
    assert_eq!(report.keys_lost, 0, "a slow survivor must not doom keys");
    let m = world.metrics.borrow();
    assert!(m.hedges_fired > 0, "the straggler should trigger hedges");
    assert!(
        m.hedges_won > 0 && m.hedges_won <= m.hedges_fired,
        "fired={} won={}",
        m.hedges_fired,
        m.hedges_won
    );
    for needle in ["\"event\":\"hedge_fired\"", "\"event\":\"hedge_won\""] {
        assert!(trace.contains(needle), "missing {needle} on repair reads");
    }
}

#[test]
fn hedging_speeds_up_a_straggled_repair() {
    // The 8x-slowed survivor must no longer set the rebuild's critical
    // path once repair reads hedge.
    let (_, unhedged, _) = straggled_repair(false);
    let (_, hedged, _) = straggled_repair(true);
    assert_eq!(unhedged.keys_lost, 0);
    assert_eq!(hedged.keys_lost, 0);
    assert_eq!(hedged.keys_repaired, unhedged.keys_repaired);
    assert!(
        hedged.elapsed < unhedged.elapsed,
        "hedged rebuild {} must beat unhedged {}",
        hedged.elapsed,
        unhedged.elapsed
    );
}

#[test]
fn deadline_misses_surface_in_metrics_and_trace() {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine(false).deadline(SimDuration::from_nanos(1)),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..10)
        .map(|i| Op::set_synthetic(format!("k{i}"), 64 << 10, i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    let m = world.metrics.borrow();
    // A 1ns deadline is unmeetable: every op completes but is late.
    assert_eq!(m.errors, 0, "a missed deadline is late, not failed");
    assert_eq!(m.deadline_misses, 10);
    drop(m);
    let text = sink.borrow().contents().to_string();
    assert!(text.contains("\"event\":\"deadline_exceeded\""));
}
