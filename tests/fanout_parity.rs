//! Golden-trace parity for the unified fan-out core: a pinned
//! seed/config matrix — every scheme × healthy/one-dead × hedge-off —
//! must produce byte-identical JSONL traces across repeated runs, and
//! each run's `Metrics` must agree with the chunk-presence oracle the
//! chaos suite uses (a read succeeds iff enough holders of the key
//! survive). Together these pin the refactored fan-out to the behaviour
//! of the per-path state machines it replaced.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

const OPS: usize = 40;
/// The server killed in the one-dead half of the matrix.
const DEAD: usize = 1;
/// Hybrid replication/erasure boundary used by the matrix.
const THRESHOLD: u64 = 4096;

fn matrix() -> Vec<(&'static str, Scheme)> {
    vec![
        ("norep", Scheme::NoRep),
        ("sync-rep", Scheme::SyncRep { replicas: 3 }),
        ("async-rep", Scheme::AsyncRep { replicas: 3 }),
        ("era-ce-cd", Scheme::era_ce_cd(3, 2)),
        ("era-se-sd", Scheme::era_se_sd(3, 2)),
        ("era-se-cd", Scheme::era_se_cd(3, 2)),
        ("era-ce-sd", Scheme::era_ce_sd(3, 2)),
        ("hybrid", Scheme::hybrid(THRESHOLD, 3, 2)),
    ]
}

/// Pinned value size of key `i`: 1..8 KiB, crossing the hybrid threshold
/// both ways.
fn len_of(i: usize) -> u64 {
    ((i % 8) as u64 + 1) * 1024
}

/// The chaos suite's chunk-presence rule: the servers holding a copy or
/// chunk of `key`, and how many of them a read needs alive.
fn holders_and_required(
    world: &World,
    scheme: &Scheme,
    key: &str,
    len: u64,
) -> (Vec<usize>, usize) {
    let targets = world.targets(key);
    match scheme {
        Scheme::NoRep | Scheme::SyncRep { .. } | Scheme::AsyncRep { .. } => (targets, 1),
        Scheme::Erasure { k, .. } => (targets, *k),
        Scheme::Hybrid {
            threshold,
            replicas,
            k,
            ..
        } => {
            if len <= *threshold {
                (targets.into_iter().take(*replicas).collect(), 1)
            } else {
                (targets, *k)
            }
        }
    }
}

/// One pinned run: write the key population, optionally kill a server,
/// read everything back. Returns the JSONL trace and the read-pass
/// metrics `(errors, get_count, integrity_errors)`.
fn traced_run(scheme: Scheme, kill: Option<usize>) -> (String, u64, u64, u64) {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        EngineConfig::new(ClusterConfig::new(ClusterProfile::RiQdr, 5, 1), scheme).window(2),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    let writes: Vec<Op> = (0..OPS)
        .map(|i| Op::set_synthetic(format!("k{i:02}"), len_of(i), i as u64))
        .collect();
    run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(
        world.metrics.borrow().errors,
        0,
        "healthy load must be clean"
    );
    if let Some(s) = kill {
        world.cluster.kill_server(s);
    }
    world.reset_metrics();
    let reads: Vec<Op> = (0..OPS).map(|i| Op::get(format!("k{i:02}"))).collect();
    run_workload(&world, &mut sim, vec![reads]);
    let m = world.metrics.borrow();
    let out = (
        sink.borrow().contents().to_string(),
        m.errors,
        m.get_count,
        m.integrity_errors,
    );
    out
}

#[test]
fn fanout_traces_are_deterministic_and_match_the_oracle() {
    for (name, scheme) in matrix() {
        for kill in [None, Some(DEAD)] {
            let (trace_a, errors, get_count, integrity) = traced_run(scheme, kill);
            let (trace_b, ..) = traced_run(scheme, kill);
            assert_eq!(
                trace_a, trace_b,
                "{name} (kill={kill:?}): same-seed traces must be byte-identical"
            );
            assert!(
                !trace_a.contains("\"event\":\"hedge_fired\""),
                "{name}: hedge-off runs must not hedge"
            );

            // Oracle agreement: with every write clean, a read fails iff
            // fewer than the required holders survive.
            let oracle = World::new(EngineConfig::new(
                ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
                scheme,
            ));
            let expected_errors = (0..OPS)
                .filter(|&i| {
                    let key = format!("k{i:02}");
                    let (holders, required) =
                        holders_and_required(&oracle, &scheme, &key, len_of(i));
                    let live = holders.iter().filter(|&&s| Some(s) != kill).count();
                    live < required
                })
                .count() as u64;
            assert_eq!(get_count, OPS as u64, "{name} (kill={kill:?})");
            assert_eq!(
                errors, expected_errors,
                "{name} (kill={kill:?}): engine diverged from the chunk-presence oracle"
            );
            assert_eq!(
                integrity, 0,
                "{name} (kill={kill:?}): reads must never corrupt"
            );
        }
    }
}
