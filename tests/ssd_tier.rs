//! The SSD-assisted deployment (the paper's Boldio storage nodes carry a
//! PCIe-SSD): RAM overflow spills to flash instead of being lost.

use eckv::prelude::*;
use eckv::store::SsdSpec;

fn world(scheme: Scheme, ram: u64, ssd: Option<u64>) -> std::rc::Rc<World> {
    let mut cluster = ClusterConfig::new(ClusterProfile::RiQdr, 5, 2)
        .client_nodes(2)
        .server_memory(ram);
    if let Some(cap) = ssd {
        cluster = cluster.ssd(SsdSpec::RI_QDR_PCIE.with_capacity(cap));
    }
    World::new(EngineConfig::new(cluster, scheme).validate(false))
}

fn write_then_read_all(world: &std::rc::Rc<World>, n: usize, len: u64) -> (u64, u64) {
    let mut sim = Simulation::new();
    let writes: Vec<Vec<Op>> = (0..2)
        .map(|c| {
            (0..n)
                .map(|i| Op::set_synthetic(format!("c{c}-k{i}"), len, (c * n + i) as u64))
                .collect()
        })
        .collect();
    eckv::core::driver::run_workload(world, &mut sim, writes);
    world.reset_metrics();
    let reads: Vec<Vec<Op>> = (0..2)
        .map(|c| (0..n).map(|i| Op::get(format!("c{c}-k{i}"))).collect())
        .collect();
    eckv::core::driver::run_workload(world, &mut sim, reads);
    let m = world.metrics.borrow();
    (m.errors, m.elapsed().as_nanos())
}

#[test]
fn ram_overflow_spills_to_flash_instead_of_losing_data() {
    // 2 x 150 x 1 MB x3 replication = ~900 MB charged into 5 x 64 MB RAM.
    let ram_only = world(Scheme::AsyncRep { replicas: 3 }, 64 << 20, None);
    let (lost_reads, _) = write_then_read_all(&ram_only, 150, 1 << 20);
    assert!(
        lost_reads > 0,
        "RAM-only must lose data under this pressure"
    );

    let assisted = world(Scheme::AsyncRep { replicas: 3 }, 64 << 20, Some(4 << 30));
    let (errors, _) = write_then_read_all(&assisted, 150, 1 << 20);
    assert_eq!(errors, 0, "the flash tier must absorb the overflow");
    // And the spill really lives on flash:
    let ssd_items: u64 = assisted
        .cluster
        .servers
        .iter()
        .map(|s| s.borrow().ssd_stats().expect("ssd attached").items)
        .sum();
    assert!(ssd_items > 0, "victims must be on flash");
}

#[test]
fn flash_reads_cost_more_than_ram_reads() {
    // Same data set fully in RAM vs mostly on flash: the flash run's read
    // phase must be slower (flash latency + device bandwidth).
    let roomy = world(Scheme::NoRep, 2 << 30, Some(4 << 30));
    let (e1, ram_time) = write_then_read_all(&roomy, 120, 1 << 20);
    assert_eq!(e1, 0);

    let tight = world(Scheme::NoRep, 16 << 20, Some(4 << 30));
    let (e2, flash_time) = write_then_read_all(&tight, 120, 1 << 20);
    assert_eq!(e2, 0);
    // Reads are wire-dominated (1 MB transfer ~322 us at QDR); the flash
    // hop adds device latency + ~400 us of device bandwidth on top.
    assert!(
        flash_time as f64 > ram_time as f64 * 1.15,
        "flash-served reads ({flash_time}ns) should clearly exceed RAM ({ram_time}ns)"
    );
}

#[test]
fn flash_overflow_is_finally_lost() {
    // RAM 16 MB + flash 32 MB per server cannot hold 2 x 120 MB x 3.
    let w = world(Scheme::AsyncRep { replicas: 3 }, 16 << 20, Some(32 << 20));
    let (errors, _) = write_then_read_all(&w, 120, 1 << 20);
    assert!(errors > 0, "overflowing both tiers must surface as misses");
}

#[test]
fn erasure_with_small_ram_beats_replication_with_flash_fallback() {
    // The paper's economics restated with the SSD tier: RS(3,2) keeps the
    // working set in RAM where 3x replication is pushed to flash.
    let rep = world(Scheme::AsyncRep { replicas: 3 }, 96 << 20, Some(4 << 30));
    let (e_rep, t_rep) = write_then_read_all(&rep, 150, 1 << 20);
    assert_eq!(e_rep, 0);

    let era = world(Scheme::era_ce_cd(3, 2), 96 << 20, Some(4 << 30));
    let (e_era, t_era) = write_then_read_all(&era, 150, 1 << 20);
    assert_eq!(e_era, 0);

    assert!(
        t_era < t_rep,
        "era reads from RAM ({t_era}ns) should beat rep reads from flash ({t_rep}ns)"
    );
}
