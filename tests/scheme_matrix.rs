//! The full scheme x parameter matrix: every design, several (k, m)
//! shapes, all codec families, healthy and degraded.

use eckv::prelude::*;

fn run_matrix_case(scheme: Scheme, servers: usize, failures: &[usize]) {
    let world = World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, servers, 1),
        scheme,
    ));
    let mut sim = Simulation::new();
    let value: Vec<u8> = (0..4096u32).map(|i| (i * 13 % 256) as u8).collect();
    let writes: Vec<Op> = (0..12)
        .map(|i| Op::set_inline(format!("m{i}"), value.clone()))
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0, "{scheme} load");

    for &f in failures {
        world.cluster.kill_server(f);
    }
    world.reset_metrics();
    let reads: Vec<Op> = (0..12).map(|i| Op::get(format!("m{i}"))).collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
    let m = world.metrics.borrow();
    assert_eq!(
        m.errors,
        0,
        "{scheme} with {} failures on {servers} servers",
        failures.len()
    );
    assert_eq!(m.integrity_errors, 0, "{scheme}");
}

#[test]
fn all_four_era_designs_all_failure_budgets() {
    for scheme in [
        Scheme::era_ce_cd(3, 2),
        Scheme::era_se_sd(3, 2),
        Scheme::era_se_cd(3, 2),
        Scheme::era_ce_sd(3, 2),
    ] {
        run_matrix_case(scheme, 5, &[]);
        run_matrix_case(scheme, 5, &[0]);
        run_matrix_case(scheme, 5, &[1, 4]);
    }
}

#[test]
fn wider_and_narrower_stripes() {
    use eckv::core::Side;
    use eckv::erasure::CodecKind;
    for (k, m, servers) in [(2usize, 1usize, 3usize), (4, 2, 6), (6, 3, 9), (5, 4, 9)] {
        let scheme = Scheme::Erasure {
            k,
            m,
            encode_at: Side::Client,
            decode_at: Side::Client,
            codec: CodecKind::RsVan,
        };
        run_matrix_case(scheme, servers, &[]);
        // Kill exactly m servers: still recoverable.
        let kills: Vec<usize> = (0..m).collect();
        run_matrix_case(scheme, servers, &kills);
    }
}

#[test]
fn all_codec_families_drive_the_engine() {
    use eckv::core::Side;
    use eckv::erasure::CodecKind;
    for codec in CodecKind::ALL {
        let scheme = Scheme::Erasure {
            k: 3,
            m: 2,
            encode_at: Side::Client,
            decode_at: Side::Client,
            codec,
        };
        run_matrix_case(scheme, 5, &[2, 4]);
    }
}

#[test]
fn replication_matrix() {
    for replicas in [2usize, 3, 4] {
        for scheme in [Scheme::SyncRep { replicas }, Scheme::AsyncRep { replicas }] {
            run_matrix_case(scheme, 5, &[]);
            let kills: Vec<usize> = (0..replicas - 1).collect();
            run_matrix_case(scheme, 5, &kills);
        }
    }
}

#[test]
fn era_storage_is_cheaper_at_equal_tolerance() {
    // Write identical data under both schemes; compare actual charged
    // bytes on the servers (slab effects included).
    fn used(scheme: Scheme) -> u64 {
        let world = World::new(EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, 1),
            scheme,
        ));
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..50)
            .map(|i| Op::set_synthetic(format!("s{i}"), 256 << 10, i))
            .collect();
        eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
        world.memory_report().used_bytes
    }
    let rep = used(Scheme::AsyncRep { replicas: 3 });
    let era = used(Scheme::era_ce_cd(3, 2));
    let ratio = rep as f64 / era as f64;
    assert!(
        (1.4..=2.2).contains(&ratio),
        "expected ~3/1.67 = 1.8x memory saving, got {ratio:.2} (rep={rep}, era={era})"
    );
}
