//! Cross-crate integration: real bytes through codec, engine, simulated
//! cluster and back, including repair and burst-buffer flows.

use eckv::boldio::{testdfsio, DfsioConfig, LustreConfig};
use eckv::prelude::*;

fn world_for(scheme: Scheme) -> std::rc::Rc<World> {
    World::new(EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, 2),
        scheme,
    ))
}

#[test]
fn inline_values_survive_every_failure_pattern() {
    // Write real bytes under RS(3,2), then check every possible pair of
    // server failures still yields bit-exact reads.
    for scheme in [Scheme::era_ce_cd(3, 2), Scheme::era_se_sd(3, 2)] {
        for (a, b) in [(0usize, 1usize), (0, 4), (1, 3), (2, 3), (3, 4)] {
            let world = world_for(scheme);
            let mut sim = Simulation::new();
            let value: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            let writes: Vec<Op> = (0..10)
                .map(|i| Op::set_inline(format!("k{i}"), value.clone()))
                .collect();
            eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
            world.cluster.kill_server(a);
            world.cluster.kill_server(b);
            world.reset_metrics();
            let reads: Vec<Op> = (0..10).map(|i| Op::get(format!("k{i}"))).collect();
            eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
            let m = world.metrics.borrow();
            assert_eq!(m.errors, 0, "{scheme} failures ({a},{b})");
            assert_eq!(m.integrity_errors, 0, "{scheme} failures ({a},{b})");
        }
    }
}

#[test]
fn mixed_value_sizes_roundtrip() {
    let world = world_for(Scheme::era_ce_cd(3, 2));
    let mut sim = Simulation::new();
    let sizes = [0usize, 1, 100, 1 << 10, 16 << 10, 100_000, 1 << 20];
    let writes: Vec<Op> = sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let value: Vec<u8> = (0..len).map(|j| (j * 31 + i) as u8).collect();
            Op::set_inline(format!("size-{len}"), value)
        })
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
    world.reset_metrics();
    let reads: Vec<Op> = sizes
        .iter()
        .map(|len| Op::get(format!("size-{len}")))
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, vec![reads]);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);
}

#[test]
fn two_clients_do_not_corrupt_each_other() {
    let world = world_for(Scheme::era_se_cd(3, 2));
    let mut sim = Simulation::new();
    let streams: Vec<Vec<Op>> = (0..2)
        .map(|c| {
            (0..25)
                .map(|i| {
                    let v: Vec<u8> = (0..2000).map(|j| (j + c * 7 + i) as u8).collect();
                    Op::set_inline(format!("c{c}-k{i}"), v)
                })
                .collect()
        })
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, streams);
    world.reset_metrics();
    let reads: Vec<Vec<Op>> = (0..2)
        .map(|c| (0..25).map(|i| Op::get(format!("c{c}-k{i}"))).collect())
        .collect();
    eckv::core::driver::run_workload(&world, &mut sim, reads);
    let m = world.metrics.borrow();
    assert_eq!(m.errors, 0);
    assert_eq!(m.integrity_errors, 0);
    assert_eq!(m.get_count, 50);
}

#[test]
fn burst_buffer_end_to_end_with_erasure() {
    let cfg = DfsioConfig::small_test();
    let world = World::new(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::RiQdr, 5, cfg.buffer_maps())
                .client_nodes(cfg.buffer_hosts)
                .server_memory(24 << 30),
            Scheme::era_ce_cd(3, 2),
        )
        .window(cfg.pipeline)
        .validate(false),
    );
    let mut sim = Simulation::new();
    let report = testdfsio::run_boldio(&world, &mut sim, &cfg, &LustreConfig::RI_QDR);
    assert!(report.write_mbps > 0.0);
    assert!(report.read_mbps > 0.0);
    assert!(report.buffer_memory_used > 0);
}

#[test]
fn deterministic_across_identical_runs() {
    fn digest() -> (u64, u64) {
        let world = world_for(Scheme::era_ce_cd(3, 2));
        let mut sim = Simulation::new();
        let writes: Vec<Op> = (0..50)
            .map(|i| Op::set_synthetic(format!("k{i}"), 8192, i))
            .collect();
        eckv::core::driver::run_workload(&world, &mut sim, vec![writes]);
        let elapsed = world.metrics.borrow().elapsed().as_nanos();
        (elapsed, sim.events_executed())
    }
    assert_eq!(digest(), digest(), "simulation must be fully deterministic");
}
