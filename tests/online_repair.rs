//! Online-repair guarantees, end to end: foreground reads stay clean
//! while a killed server is rebuilt under load, degraded reads promote
//! their keys past the background scan, the bandwidth throttle's cap is
//! verifiable from the trace alone, a slowed survivor delays the rebuild
//! without changing its outcome, and the whole thing is byte-identical
//! across same-seed runs.

use std::cell::RefCell;
use std::rc::Rc;

use eckv::prelude::*;
use eckv::simnet::{JsonlSink, Trace, TraceBus};

/// The server that is killed and rebuilt in every test.
const FAILED: usize = 2;

fn engine(scheme: Scheme, clients: usize, repair: RepairConfig) -> EngineConfig {
    EngineConfig::new(
        ClusterConfig::new(ClusterProfile::RiQdr, 5, clients),
        scheme,
    )
    .window(2)
    .repair(repair)
}

/// Writes `n` synthetic keys (`k00`, `k01`, ... so sort order == scan
/// order) of `len(i)` bytes through client 0.
fn load_keys(world: &Rc<World>, sim: &mut Simulation, n: usize, len: impl Fn(usize) -> u64) {
    let writes: Vec<Op> = (0..n)
        .map(|i| Op::set_synthetic(format!("k{i:02}"), len(i), i as u64))
        .collect();
    run_workload(world, sim, vec![writes]);
    assert_eq!(world.metrics.borrow().errors, 0, "load must be clean");
}

/// Extracts `"name":<u64>` from one JSONL line.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `(at_ns, bytes)` of every `repair_started` event in the trace.
fn started_events(trace: &str) -> Vec<(u64, u64)> {
    trace
        .lines()
        .filter(|l| l.contains("\"event\":\"repair_started\""))
        .map(|l| {
            (
                field_u64(l, "at_ns").expect("at_ns"),
                field_u64(l, "bytes").expect("bytes"),
            )
        })
        .collect()
}

#[test]
fn foreground_reads_stay_clean_during_online_repair() {
    // Era-SE-SD under a read load while one of five servers rebuilds:
    // every GET must succeed intact (degraded decode where needed), and
    // the rebuild must restore every key without loss.
    let n = 40;
    let world = World::new(
        EngineConfig::new(
            ClusterConfig::new(ClusterProfile::SdscComet, 5, 2),
            Scheme::era_se_sd(3, 2),
        )
        .window(2)
        .repair(RepairConfig::default().window(4).bandwidth(150_000_000)),
    );
    let mut sim = Simulation::new();
    load_keys(&world, &mut sim, n, |_| 16 << 10);

    world.reset_metrics();
    world.cluster.kill_server(FAILED);
    start_repair(&world, &mut sim, FAILED);
    // Both clients read every key while the rebuild runs.
    let reads: Vec<Op> = (0..n).map(|i| Op::get(format!("k{i:02}"))).collect();
    enqueue_workload(&world, &mut sim, vec![reads.clone(), reads]);
    sim.run();

    let m = world.metrics.borrow();
    assert_eq!(m.get_count, 2 * n as u64);
    assert_eq!(m.errors, 0, "no foreground read may fail during repair");
    assert_eq!(m.integrity_errors, 0, "no foreground read may corrupt");
    assert!(
        m.fg_ops_during_repair > 0,
        "the foreground must actually overlap the rebuild"
    );
    assert_eq!(m.repair_queue_depth_hwm, n as u64);
    assert!(m.repair_bytes > 0);
    drop(m);

    assert!(!world.repair_active());
    let report = world.last_repair_report().expect("rebuild completed");
    assert_eq!(
        report.keys_repaired, n as u64,
        "RS(3,2) spans all 5 servers"
    );
    assert_eq!(report.keys_lost, 0);
}

#[test]
fn degraded_read_promotes_its_key_past_the_background_scan() {
    // Distinct value lengths give every key a distinct repair cost, so
    // the `bytes` field of `repair_started` identifies which key each
    // event rebuilds — the queue order is observable from the trace.
    let n = 40;
    let len = |i: usize| 8192 + 768 * i as u64;

    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine(
            Scheme::era_ce_cd(3, 2),
            1,
            // window 1 + a tight throttle: the background scan crawls,
            // so the promoted key visibly jumps the queue.
            RepairConfig::default().window(1).bandwidth(20_000_000),
        ),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    load_keys(&world, &mut sim, n, len);

    // Pick a key deep in scan order whose chunk on the failed server is a
    // *data* shard, so a GET of it must decode (and therefore promote).
    let (scan_pos, hot) = (20..n)
        .rev()
        .map(|i| (i, format!("k{i:02}")))
        .find(|(_, key)| world.targets(key).iter().position(|&s| s == FAILED) < Some(3))
        .expect("some late key keeps a data shard on the failed server");

    world.cluster.kill_server(FAILED);
    start_repair(&world, &mut sim, FAILED);
    enqueue_workload(&world, &mut sim, vec![vec![Op::get(hot)]]);
    sim.run();

    let report = world.last_repair_report().expect("rebuild completed");
    assert_eq!(report.keys_repaired, n as u64);
    assert_eq!(world.metrics.borrow().repair_promotions, 1);
    let trace = sink.borrow().contents().to_string();
    assert!(trace.contains("\"event\":\"repair_key_promoted\""));

    let started: Vec<u64> = started_events(&trace).iter().map(|&(_, b)| b).collect();
    assert_eq!(started.len(), n);
    // Cost is strictly increasing in the key index, so the promoted
    // key's event carries the `scan_pos`-th smallest byte count.
    let mut sorted = started.clone();
    sorted.sort_unstable();
    let hot_bytes = sorted[scan_pos];
    let issued_at = started
        .iter()
        .position(|&b| b == hot_bytes)
        .expect("the hot key was rebuilt");
    assert!(
        issued_at <= 2 && issued_at < scan_pos,
        "promotion must beat the scan: issued {issued_at}th, scan position {scan_pos}"
    );
    // Everything else still rebuilds in background-scan (sorted) order.
    let rest: Vec<u64> = started
        .iter()
        .copied()
        .filter(|&b| b != hot_bytes)
        .collect();
    assert!(
        rest.windows(2).all(|w| w[0] < w[1]),
        "unpromoted keys must drain in sorted scan order"
    );
}

#[test]
fn throttle_cap_holds_in_every_trace_window() {
    // The token bucket's contract, checked purely from the emitted
    // trace: over any window, the repair traffic admitted (sum of
    // `repair_started` byte debits) stays within rate * window, plus at
    // most one in-flight key's worth of burst.
    const RATE: u64 = 50_000_000;
    let n = 60;

    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine(
            Scheme::era_ce_cd(3, 2),
            1,
            RepairConfig::default().bandwidth(RATE),
        ),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    load_keys(&world, &mut sim, n, |_| 16 << 10);

    world.cluster.kill_server(FAILED);
    start_repair(&world, &mut sim, FAILED);
    sim.run();
    assert_eq!(world.last_repair_report().expect("completed").keys_lost, 0);

    let trace = sink.borrow().contents().to_string();
    assert!(trace.contains("\"event\":\"repair_throttled\""));
    let events = started_events(&trace);
    assert_eq!(events.len(), n);
    let max_cost = events.iter().map(|&(_, b)| b).max().unwrap();
    const WINDOW_NS: u64 = 2_000_000;
    let cap = RATE * WINDOW_NS / 1_000_000_000 + max_cost;
    for &(t0, _) in &events {
        let admitted: u64 = events
            .iter()
            .filter(|&&(t, _)| t >= t0 && t < t0 + WINDOW_NS)
            .map(|&(_, b)| b)
            .sum();
        assert!(
            admitted <= cap,
            "window at {t0}ns admitted {admitted} bytes, cap {cap}"
        );
    }
}

#[test]
fn slowed_survivor_delays_the_rebuild_without_changing_it() {
    // A straggling survivor is slow, not dead: the rebuild must take
    // longer but still restore exactly the same keys.
    let run = |slow: bool| {
        let world = World::new(engine(Scheme::era_ce_cd(3, 2), 1, RepairConfig::default()));
        let mut sim = Simulation::new();
        load_keys(&world, &mut sim, 30, |_| 16 << 10);
        world.cluster.kill_server(FAILED);
        if slow {
            world
                .cluster
                .slow_server(sim.now(), 1, 8.0, SimDuration::from_micros(300));
        }
        repair_server(&world, &mut sim, FAILED)
    };
    let healthy = run(false);
    let degraded = run(true);
    assert!(healthy.keys_repaired > 0);
    assert_eq!(degraded.keys_repaired, healthy.keys_repaired);
    assert_eq!(healthy.keys_lost, 0);
    assert_eq!(degraded.keys_lost, 0);
    assert!(
        degraded.elapsed > healthy.elapsed,
        "a straggling survivor must slow the rebuild: {} vs {}",
        degraded.elapsed,
        healthy.elapsed
    );
}

/// A fully traced online repair under foreground reads; returns the
/// JSONL text.
fn traced_online_repair() -> String {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let mut bus = TraceBus::new();
    bus.add_sink(sink.clone());
    let world = World::new_traced(
        engine(
            Scheme::era_ce_cd(3, 2),
            1,
            RepairConfig::default().bandwidth(100_000_000),
        ),
        Trace::from_bus(bus),
    );
    let mut sim = Simulation::new();
    load_keys(&world, &mut sim, 30, |_| 16 << 10);
    world.cluster.kill_server(FAILED);
    start_repair(&world, &mut sim, FAILED);
    let reads: Vec<Op> = (0..30).map(|i| Op::get(format!("k{i:02}"))).collect();
    enqueue_workload(&world, &mut sim, vec![reads]);
    sim.run();
    assert_eq!(world.metrics.borrow().errors, 0);
    let text = sink.borrow().contents().to_string();
    text
}

#[test]
fn online_repair_traces_are_byte_identical() {
    let a = traced_online_repair();
    let b = traced_online_repair();
    assert_eq!(
        a, b,
        "online repair under load must stay deterministic run to run"
    );
    for needle in [
        "\"event\":\"repair_started\"",
        "\"event\":\"repair_throttled\"",
        "\"event\":\"repair_key_promoted\"",
        "\"event\":\"repair_shard\"",
        "\"event\":\"repair_done\"",
    ] {
        assert!(a.contains(needle), "missing {needle}");
    }
}
